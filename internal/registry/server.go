package registry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pbio"
	"repro/internal/spool"
	"repro/internal/wire"
)

// RegistryzPath is the debug endpoint path serving the table.
const RegistryzPath = "/debug/registryz"

// tableEntry is one stored format: the encoded entry blob (returned verbatim
// to resolvers — the server never re-encodes) plus inspection metadata.
type tableEntry struct {
	blob    []byte
	name    string
	fields  int
	xforms  int
	addedAt time.Time
	hits    atomic.Uint64
}

// Server is the format-registry daemon core: a fingerprint-keyed table of
// format + transform meta-data served over wire framing. cmd/formatd wraps
// it with flags, signals and the debug HTTP server; tests embed it directly.
type Server struct {
	mu    sync.RWMutex
	table map[uint64]*tableEntry

	// Connection bookkeeping, so Close can tear down a live daemon (tests
	// kill formatd mid-run to prove clients degrade to in-band exchange).
	connMu sync.Mutex
	lns    []net.Listener
	active map[net.Conn]struct{}
	closed bool

	snapshotPath string // "" = snapshots disabled

	reg   *obs.Registry
	gets  *obs.Counter
	puts  *obs.Counter
	unk   *obs.Counter
	rerrs *obs.Counter
	conns *obs.Gauge
	size  *obs.Gauge
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerObs attaches an observability registry; the daemon mirrors its
// activity into "formatd.*" instruments.
func WithServerObs(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.reg = reg }
}

// WithSnapshotPath enables table persistence: the table is loaded from path
// at construction (a missing file is an empty table) and rewritten, via the
// self-describing spool framing, after every mutation.
func WithSnapshotPath(path string) ServerOption {
	return func(s *Server) { s.snapshotPath = path }
}

// NewServer returns a registry server, loading the snapshot when one is
// configured and present. A corrupt snapshot is an error — silently serving
// a partial table would defeat the suppression protocol — except for a torn
// final frame, which is the expected shape of a crash mid-snapshot and
// drops only the entry being written.
func NewServer(opts ...ServerOption) (*Server, error) {
	s := &Server{table: make(map[uint64]*tableEntry)}
	for _, o := range opts {
		o(s)
	}
	s.gets = s.reg.Counter("formatd.gets")
	s.puts = s.reg.Counter("formatd.puts")
	s.unk = s.reg.Counter("formatd.unknown")
	s.rerrs = s.reg.Counter("formatd.rpc_errors")
	s.conns = s.reg.Gauge("formatd.conns")
	s.size = s.reg.Gauge("formatd.entries")
	if s.snapshotPath != "" {
		if err := s.loadSnapshot(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Put stores an entry, replacing any previous one for the same fingerprint,
// and persists the table when snapshots are enabled. It is the direct-API
// form of an opPut RPC (tests and preloading use it).
func (s *Server) Put(f *pbio.Format, xforms ...*core.Xform) error {
	if f == nil {
		return errors.New("registry: nil format")
	}
	return s.putBlob(f.Fingerprint(), encodeEntry(f, xforms))
}

// putBlob validates and stores one encoded entry under fp.
func (s *Server) putBlob(fp uint64, blob []byte) error {
	return s.put(fp, blob, true)
}

func (s *Server) put(fp uint64, blob []byte, persist bool) error {
	e, err := decodeEntry(blob)
	if err != nil {
		return err
	}
	if got := e.Format.Fingerprint(); got != fp {
		return fmt.Errorf("registry: entry fingerprint %016x does not match key %016x", got, fp)
	}
	te := &tableEntry{
		blob:    blob,
		name:    e.Format.Name(),
		fields:  e.Format.NumFields(),
		xforms:  len(e.Xforms),
		addedAt: time.Now(),
	}
	s.mu.Lock()
	s.table[fp] = te
	s.size.Set(int64(len(s.table)))
	if persist {
		err = s.saveSnapshotLocked()
	}
	s.mu.Unlock()
	s.puts.Inc()
	return err
}

// getBlob returns the encoded entry for fp, or nil.
func (s *Server) getBlob(fp uint64) []byte {
	s.mu.RLock()
	te := s.table[fp]
	s.mu.RUnlock()
	if te == nil {
		s.unk.Inc()
		return nil
	}
	te.hits.Add(1)
	s.gets.Inc()
	return te.blob
}

// Resolve returns the stored entry for fp — the direct-API form of an opGet
// RPC (ErrUnknownFingerprint when absent).
func (s *Server) Resolve(fp uint64) (Entry, error) {
	blob := s.getBlob(fp)
	if blob == nil {
		return Entry{}, fmt.Errorf("%w: %016x", ErrUnknownFingerprint, fp)
	}
	return decodeEntry(blob)
}

// Len returns the number of stored entries.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.table)
}

// Serve accepts registry connections on ln until the listener closes.
// Each connection is one wire.Conn whose FrameRegistry control frames carry
// the RPCs; everything else on the connection follows normal wire rules
// (unknown control kinds skip, data frames are an error since the daemon
// registers no formats).
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		_ = ln.Close()
		return errors.New("registry: server closed")
	}
	s.lns = append(s.lns, ln)
	s.connMu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			_ = nc.Close()
			return nil
		}
		if s.active == nil {
			s.active = make(map[net.Conn]struct{})
		}
		s.active[nc] = struct{}{}
		s.connMu.Unlock()
		go s.handle(nc)
	}
}

// Close stops serving: listeners close, and every established registry
// connection is torn down, so clients observe the daemon's death promptly
// rather than on their next RPC timeout.
func (s *Server) Close() error {
	s.connMu.Lock()
	s.closed = true
	lns := s.lns
	s.lns = nil
	conns := make([]net.Conn, 0, len(s.active))
	for nc := range s.active {
		conns = append(conns, nc)
	}
	s.connMu.Unlock()
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, nc := range conns {
		_ = nc.Close()
	}
	return err
}

// handle runs one connection's read loop; RPC dispatch happens in the
// control hook, responses are written back on the same connection.
func (s *Server) handle(nc net.Conn) {
	s.conns.Add(1)
	defer func() {
		s.conns.Add(-1)
		s.connMu.Lock()
		delete(s.active, nc)
		s.connMu.Unlock()
	}()
	var conn *wire.Conn
	conn = wire.NewConn(nc, wire.WithControlHook(wire.FrameRegistry, func(body []byte) error {
		return s.dispatch(conn, body)
	}))
	defer conn.Close()
	for {
		if _, _, err := conn.ReadEncoded(); err != nil {
			return // EOF, peer reset, or a protocol violation: drop the conn
		}
	}
}

// dispatch executes one RPC request and writes its response. Malformed
// frames are fatal to the connection (returning the error tears it down);
// well-formed requests the daemon cannot serve get an error response, so a
// client bug never wedges the transport.
func (s *Server) dispatch(conn *wire.Conn, body []byte) error {
	op, reqID, payload, err := parseHeader(body)
	if err != nil {
		s.rerrs.Inc()
		return err
	}
	switch op {
	case opGet:
		if len(payload) != 8 {
			s.rerrs.Inc()
			return fmt.Errorf("registry: opGet payload %d bytes, want 8", len(payload))
		}
		fp := binary.LittleEndian.Uint64(payload)
		if blob := s.getBlob(fp); blob != nil {
			return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opGetResp, reqID, statusOK, blob))
		}
		return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opGetResp, reqID, statusUnknown, nil))
	case opPut:
		e, derr := decodeEntry(payload)
		if derr != nil {
			s.rerrs.Inc()
			return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opPutResp, reqID, statusError, []byte(derr.Error())))
		}
		if perr := s.putBlob(e.Format.Fingerprint(), append([]byte(nil), payload...)); perr != nil {
			s.rerrs.Inc()
			return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opPutResp, reqID, statusError, []byte(perr.Error())))
		}
		return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opPutResp, reqID, statusOK, nil))
	default:
		s.rerrs.Inc()
		return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opGetResp, reqID, statusError, []byte("unknown op")))
	}
}

// snapshotFormat is the self-describing spool schema for table persistence:
// one record per entry, the fingerprint plus the entry blob (byte-safe in a
// String field). Being an ordinary pbio format in an ordinary spool file,
// the snapshot is readable by any tool in this repo — including a future
// daemon whose entry layout evolved, via the usual morphing machinery.
var snapshotFormat = func() *pbio.Format {
	f, err := pbio.NewFormat("registry.entry", []pbio.Field{
		{Name: "fp", Kind: pbio.Unsigned, Size: 8},
		{Name: "blob", Kind: pbio.String},
	})
	if err != nil {
		panic(err)
	}
	return f
}()

// saveSnapshotLocked rewrites the snapshot file (write-temp-then-rename, so
// a crash leaves either the old table or the new one, never a mix — a torn
// tail in the temp file is discarded with it).
func (s *Server) saveSnapshotLocked() error {
	if s.snapshotPath == "" {
		return nil
	}
	tmp := s.snapshotPath + ".tmp"
	w, err := spool.Create(tmp)
	if err != nil {
		return err
	}
	fps := make([]uint64, 0, len(s.table))
	for fp := range s.table {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		rec := pbio.NewRecord(snapshotFormat).
			MustSet("fp", pbio.Uint(fp)).
			MustSet("blob", pbio.Str(string(s.table[fp].blob)))
		if err := w.Append(rec); err != nil {
			_ = w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.snapshotPath)
}

// loadSnapshot populates the table from the snapshot file, if present.
func (s *Server) loadSnapshot() error {
	r, err := spool.Open(s.snapshotPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF || errors.Is(err, spool.ErrTruncated) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("registry: snapshot %s: %w", s.snapshotPath, err)
		}
		fpv, _ := rec.Get("fp")
		blobv, _ := rec.Get("blob")
		if err := s.put(fpv.Uint64(), []byte(blobv.Strval()), false); err != nil {
			return fmt.Errorf("registry: snapshot %s: %w", s.snapshotPath, err)
		}
	}
}

// registryzEntry is one table row in the /debug/registryz JSON.
type registryzEntry struct {
	Fingerprint string    `json:"fingerprint"`
	Format      string    `json:"format"`
	Fields      int       `json:"fields"`
	Xforms      int       `json:"xforms"`
	Hits        uint64    `json:"hits"`
	AddedAt     time.Time `json:"added_at"`
}

// registryzSnapshot is the /debug/registryz JSON document.
type registryzSnapshot struct {
	Entries []registryzEntry `json:"entries"`
	Count   int              `json:"count"`
	Gets    uint64           `json:"gets"`
	Puts    uint64           `json:"puts"`
	Unknown uint64           `json:"unknown"`
}

// Handler returns the /debug/registryz HTTP handler: the full table as JSON
// (?format=text for a line-per-entry dump), sorted by fingerprint so two
// snapshots of a quiescent daemon are identical.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := registryzSnapshot{
			Gets:    s.gets.Load(),
			Puts:    s.puts.Load(),
			Unknown: s.unk.Load(),
		}
		s.mu.RLock()
		fps := make([]uint64, 0, len(s.table))
		for fp := range s.table {
			fps = append(fps, fp)
		}
		sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
		for _, fp := range fps {
			te := s.table[fp]
			snap.Entries = append(snap.Entries, registryzEntry{
				Fingerprint: fmt.Sprintf("%016x", fp),
				Format:      te.name,
				Fields:      te.fields,
				Xforms:      te.xforms,
				Hits:        te.hits.Load(),
				AddedAt:     te.addedAt,
			})
		}
		s.mu.RUnlock()
		snap.Count = len(snap.Entries)

		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "# formatd table: %d entries (gets=%d puts=%d unknown=%d)\n",
				snap.Count, snap.Gets, snap.Puts, snap.Unknown)
			for _, e := range snap.Entries {
				fmt.Fprintf(w, "%s %-20s fields=%d xforms=%d hits=%d\n",
					e.Fingerprint, e.Format, e.Fields, e.Xforms, e.Hits)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}
