package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pbio"
)

// NewClusterClient returns a client for a formatd replica set. It is a
// *Client like any other — it satisfies the same three integration points
// (wire.FormatResolver, the Holds suppressor predicate, TransformsFor) — but
// instead of one connection it carries one child client per peer and routes
// by fingerprint shard: ShardOf(fp, shards) picks the shard, shard mod
// len(addrs) the preferred replica. Reads try the preferred replica first
// and fail over across the rest with the children's own jittered backoff;
// writes land on any reachable replica (standbys forward them to the
// primary). The per-child LRU hit path is byte-for-byte the single-daemon
// one, so a warm resolve stays allocation-free.
//
// The parent watches for daemon instance changes and down transitions on its
// children and reconverges: every format this process registered is
// re-announced, so a promoted standby that missed the primary's last
// acknowledged writes still ends up holding them (the server damps
// byte-identical re-registrations, so an already-replicated entry costs one
// no-op RPC).
//
// shards <= 1 means one shard: every fingerprint prefers replica 0 (the
// usual primary) and the standbys are pure failover targets.
func NewClusterClient(addrs []string, shards int, opts ...ClientOption) *Client {
	if len(addrs) == 0 {
		panic("registry: NewClusterClient needs at least one address")
	}
	if shards < 1 {
		shards = 1
	}
	parent := &Client{
		shards:    shards,
		published: make(map[uint64]publishedEntry),
	}
	for _, addr := range addrs {
		ch := NewClient(addr, opts...)
		ch.onDown = func() { parent.clusterReconverge() }
		ch.onWatchUp = func(instChanged bool) {
			if instChanged {
				parent.clusterReconverge()
			}
		}
		parent.children = append(parent.children, ch)
	}
	return parent
}

// route maps a fingerprint to the index of its preferred replica.
func (c *Client) route(fp uint64) int {
	return ShardOf(fp, c.shards) % len(c.children)
}

// clusterRegister publishes through the first reachable replica, preferred
// first. A standby forwards the write to the primary before acknowledging,
// so success from any replica means the primary holds the entry. The entry
// is remembered at the parent level too: reconvergence after a failover
// re-announces it wherever routing then points.
func (c *Client) clusterRegister(f *pbio.Format, xforms []*core.Xform) error {
	fp := f.Fingerprint()
	start := c.route(fp)
	var firstErr, retryable error
	for i := range c.children {
		ch := c.children[(start+i)%len(c.children)]
		err := ch.Register(f, xforms...)
		if err == nil {
			c.mu.Lock()
			c.published[fp] = publishedEntry{format: f, xforms: xforms}
			c.mu.Unlock()
			return nil
		}
		if retryable == nil && errors.Is(err, ErrRetryable) {
			retryable = err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	// A retryable refusal (a standby with no write path: election in flight)
	// dominates transport errors from other replicas — typically the dead
	// primary that caused the election. The caller can usefully wait and
	// retry, because a write path is about to exist; reporting the transport
	// error instead would read as "cluster unreachable" when it is not.
	if retryable != nil {
		return retryable
	}
	return firstErr
}

// clusterResolve resolves through the preferred replica, failing over across
// the rest on transport errors — and on "unknown fingerprint" too: a standby
// that has not yet applied the registration honestly does not know the
// entry, so one replica's unknown is lag until every reachable replica
// agrees. An answer from a non-preferred replica is read-repaired into the
// preferred child's LRU so the next resolve is a local, allocation-free hit.
func (c *Client) clusterResolve(fp uint64) (*pbio.Format, []*core.Xform, error) {
	start := c.route(fp)
	var firstErr error
	unknowns := 0
	for i := range c.children {
		ch := c.children[(start+i)%len(c.children)]
		f, xforms, err := ch.ResolveFormat(fp)
		if err == nil {
			if i != 0 {
				c.children[start].cacheDirect(fp, f, xforms)
			}
			return f, xforms, nil
		}
		if errors.Is(err, ErrUnknownFingerprint) {
			unknowns++
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if unknowns == len(c.children) {
		return nil, nil, fmt.Errorf("%w: %016x (all replicas)", ErrUnknownFingerprint, fp)
	}
	return nil, nil, firstErr
}

// clusterResolveFresh is the cluster arm of ResolveFormatFresh: every
// reachable replica is asked directly (no caches) and the transform sets are
// unioned, deduplicated by destination fingerprint. The union — rather than
// first-answer-wins like clusterResolve — is the point: after a fingerprint
// collision the richer transform set may sit only on the primary while a
// standby still serves the pre-collision entry, and which replica answers
// first must not decide whether a route exists. The replicas are asked
// concurrently: a dead peer prices one RPC timeout into the wall-clock, not
// one per peer, and this path can run under a morpher's decision lock with
// live traffic queued behind it. The union is read-repaired into the
// preferred child so the next warm resolve sees it too. Ordering is by
// replica preference (not answer arrival), so the result is deterministic
// for a given cluster state.
func (c *Client) clusterResolveFresh(fp uint64) (*pbio.Format, []*core.Xform, error) {
	start := c.route(fp)
	type answer struct {
		f      *pbio.Format
		xforms []*core.Xform
		err    error
	}
	answers := make([]answer, len(c.children))
	var wg sync.WaitGroup
	for i := range c.children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := c.children[(start+i)%len(c.children)]
			a := &answers[i]
			a.f, a.xforms, a.err = ch.ResolveFormatFresh(fp)
		}(i)
	}
	wg.Wait()
	var (
		format   *pbio.Format
		union    []*core.Xform
		seen     = make(map[uint64]bool)
		firstErr error
	)
	for _, a := range answers {
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			continue
		}
		if format == nil {
			format = a.f
		}
		for _, x := range a.xforms {
			if to := x.To.Fingerprint(); !seen[to] {
				seen[to] = true
				union = append(union, x)
			}
		}
	}
	if format == nil {
		return nil, nil, firstErr
	}
	c.children[start].cacheDirect(fp, format, union)
	return format, union, nil
}

// clusterReconverge re-announces every format this process published, with
// retries, until all of them are acknowledged again. Fired when a child
// discovers a daemon instance change (failover: the promoted standby may
// have missed acknowledged-but-unreplicated writes) or goes down (the write
// may have died with its acceptor). Sweeps are coalesced: one runs at a
// time, and a trigger during a sweep is safe to drop because the sweep
// re-snapshots nothing — the next Register failure or instance change
// triggers again.
func (c *Client) clusterReconverge() {
	c.mu.Lock()
	if c.reconverging || c.closed {
		c.mu.Unlock()
		return
	}
	c.reconverging = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.reconverging = false
		c.mu.Unlock()
	}()

	const maxAttempts = 40
	for attempt := 0; attempt < maxAttempts; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		entries := make([]publishedEntry, 0, len(c.published))
		for _, e := range c.published {
			entries = append(entries, e)
		}
		c.mu.Unlock()
		if len(entries) == 0 {
			return
		}
		failed := 0
		for _, e := range entries {
			if err := c.clusterRegister(e.format, e.xforms); err != nil {
				failed++
			}
		}
		if failed == 0 {
			return
		}
		// Jittered linear backoff: failover blackouts are short (a few
		// heartbeats), so stay eager early and ease off.
		base := 50 * time.Millisecond * time.Duration(attempt+1)
		time.Sleep(base + time.Duration(rand.Int63n(int64(base)/2+1)))
	}
}

// ClusterChildren exposes the per-peer child clients (index-aligned with the
// address list given to NewClusterClient); nil on a single-daemon client.
// Debug surfaces and benchmarks use it to report per-replica state.
func (c *Client) ClusterChildren() []*Client { return c.children }
