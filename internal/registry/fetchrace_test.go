package registry

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pbio"
	"repro/internal/wire"
)

// stallDaemon is a fake registry daemon whose opGet responses park until the
// test releases them, so the test can interleave a watch-event push against
// an in-flight cold fetch in either order — deterministically, which a real
// Server cannot offer.
type stallDaemon struct {
	ln net.Listener

	mu   sync.Mutex
	conn *wire.Conn // the (single) client connection, once accepted

	getParked chan uint64 // reqID of each parked opGet, in arrival order
	getReply  chan stallReply
}

type stallReply struct {
	status  byte
	payload []byte
}

func startStallDaemon(t *testing.T) *stallDaemon {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &stallDaemon{
		ln:        ln,
		getParked: make(chan uint64, 4),
		getReply:  make(chan stallReply, 4),
	}
	go d.serve()
	t.Cleanup(func() { _ = ln.Close() })
	return d
}

func (d *stallDaemon) serve() {
	nc, err := d.ln.Accept()
	if err != nil {
		return
	}
	var conn *wire.Conn
	conn = wire.NewConn(nc, wire.WithControlHook(wire.FrameRegistry, func(body []byte) error {
		op, reqID, _, err := parseHeader(body)
		if err != nil {
			return err
		}
		switch op {
		case opGet:
			// Park: the response waits for the test's explicit release. The
			// read pump blocks with it, but event pushes come from the test's
			// goroutine through the wire write lock, so they still flow.
			d.getParked <- reqID
			r := <-d.getReply
			return conn.WriteControl(wire.FrameRegistry,
				appendResponse(nil, opGetResp, reqID, r.status, r.payload))
		case opHello:
			return conn.WriteControl(wire.FrameRegistry,
				appendResponse(nil, opHelloResp, reqID, statusOK, appendHello(nil, capWatch, 7, 0)))
		case opWatch:
			return conn.WriteControl(wire.FrameRegistry,
				appendResponse(nil, opWatchResp, reqID, statusOK, []byte{0}))
		}
		return nil
	}))
	d.mu.Lock()
	d.conn = conn
	d.mu.Unlock()
	for {
		if _, _, err := conn.ReadEncoded(); err != nil {
			return
		}
	}
}

// pushEvent injects one watch-event frame at the connected client, exactly
// as the daemon's watch pump would.
func (d *stallDaemon) pushEvent(t *testing.T, seq, fp uint64, blob []byte) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		d.mu.Lock()
		conn := d.conn
		d.mu.Unlock()
		if conn != nil {
			if err := conn.WriteControl(wire.FrameRegistry, appendEvent(nil, seq, fp, blob)); err != nil {
				t.Fatalf("push event: %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no client connection to push the event at")
		}
		time.Sleep(time.Millisecond)
	}
}

// fetchRaceFixture builds the shared pieces: one format, an old and a new
// entry blob for its fingerprint (the revisions differ in their transform
// code, which is not part of the fingerprint), and a client against the
// stalling daemon.
func fetchRaceFixture(t *testing.T) (*stallDaemon, *Client, *pbio.Format, []byte, []byte) {
	t.Helper()
	d := startStallDaemon(t)
	f := testFormat(t, "raced", 1)
	old := testFormat(t, "raced", 0)
	oldBlob := encodeEntry(f, []*core.Xform{{From: f, To: old, Code: "old.id = new.id;"}})
	newBlob := encodeEntry(f, []*core.Xform{{From: f, To: old, Code: "old.id = new.id; old.body = new.body;"}})
	// Watch disabled keeps the connection free of hello/watch RPC noise; the
	// client applies pushed events regardless of subscription state.
	c := NewClient(d.ln.Addr().String(), WithWatchDisabled(), WithNegTTL(time.Hour))
	t.Cleanup(func() { _ = c.Close() })
	return d, c, f, oldBlob, newBlob
}

// xformCode extracts the (single) transform code of a resolution result for
// telling the two entry revisions apart.
func xformCode(t *testing.T, xforms []*core.Xform) string {
	t.Helper()
	if len(xforms) != 1 {
		t.Fatalf("resolved %d transforms, want 1", len(xforms))
	}
	return xforms[0].Code
}

// TestWatchEventDuringInflightFetch is the regression test for the
// stale-overwrite race: a watch invalidation event that lands while a cold
// fetch for the same fingerprint is in flight used to be clobbered when the
// fetch completed afterwards — the LRU ended up holding the older revision
// the daemon had answered with before the event was emitted. The fetch
// result must yield to the event's entry.
func TestWatchEventDuringInflightFetch(t *testing.T) {
	d, c, f, oldBlob, newBlob := fetchRaceFixture(t)
	fp := f.Fingerprint()

	type outcome struct {
		xforms []*core.Xform
		err    error
	}
	got := make(chan outcome, 1)
	go func() {
		_, xf, err := c.ResolveFormat(fp)
		got <- outcome{xf, err}
	}()

	// The fetch is now parked inside the daemon. Deliver the invalidation
	// event carrying the NEW revision and wait until the client applied it.
	<-d.getParked
	d.pushEvent(t, 1, fp, newBlob)
	waitFor(t, "event applied to the LRU", func() bool { return c.Holds(f) })

	// Release the fetch with the OLD revision — the state of the table
	// before the event. Completing now, it must not overwrite the event.
	d.getReply <- stallReply{status: statusOK, payload: oldBlob}

	res := <-got
	if res.err != nil {
		t.Fatalf("resolve: %v", res.err)
	}
	if code := xformCode(t, res.xforms); code != "old.id = new.id; old.body = new.body;" {
		t.Errorf("resolve returned the stale fetch revision: %q", code)
	}
	// The cache must keep serving the event's revision too.
	_, xf, err := c.ResolveFormat(fp)
	if err != nil {
		t.Fatalf("re-resolve: %v", err)
	}
	if code := xformCode(t, xf); code != "old.id = new.id; old.body = new.body;" {
		t.Errorf("LRU holds the stale fetch revision: %q", code)
	}
}

// TestWatchEventDuringInflightUnknown covers the negative-cache half of the
// same race: the daemon answers the parked fetch "unknown fingerprint"
// (true when the fetch was dispatched), but the registration event arrives
// before that answer does. The stale unknown must neither be returned nor
// re-poison the negative cache the event already cleared.
func TestWatchEventDuringInflightUnknown(t *testing.T) {
	d, c, f, _, newBlob := fetchRaceFixture(t)
	fp := f.Fingerprint()

	type outcome struct {
		xforms []*core.Xform
		err    error
	}
	got := make(chan outcome, 1)
	go func() {
		_, xf, err := c.ResolveFormat(fp)
		got <- outcome{xf, err}
	}()

	<-d.getParked
	d.pushEvent(t, 1, fp, newBlob)
	waitFor(t, "event applied to the LRU", func() bool { return c.Holds(f) })
	d.getReply <- stallReply{status: statusUnknown}

	res := <-got
	if res.err != nil {
		t.Fatalf("resolve answered the stale unknown instead of the event's entry: %v", res.err)
	}
	// With an hour-long negative TTL, any re-poisoning would stick: the next
	// resolution must hit the LRU, not the negative cache.
	if _, _, err := c.ResolveFormat(fp); errors.Is(err, ErrUnknownFingerprint) {
		t.Fatal("stale unknown re-poisoned the negative cache over the event")
	}
}

// TestFetchCompletesBeforeWatchEvent pins the opposite interleaving: when
// the fetch completes first, its insertion is legitimate — and the event
// arriving afterwards must still supersede it, exactly as invalidation
// events always have.
func TestFetchCompletesBeforeWatchEvent(t *testing.T) {
	d, c, f, oldBlob, newBlob := fetchRaceFixture(t)
	fp := f.Fingerprint()

	go func() {
		reqID := <-d.getParked
		_ = reqID
		d.getReply <- stallReply{status: statusOK, payload: oldBlob}
	}()
	_, xf, err := c.ResolveFormat(fp)
	if err != nil {
		t.Fatal(err)
	}
	if code := xformCode(t, xf); code != "old.id = new.id;" {
		t.Fatalf("fetch-first resolve returned %q, want the old revision", code)
	}

	d.pushEvent(t, 1, fp, newBlob)
	waitFor(t, "event superseded the fetched entry", func() bool {
		_, xf, err := c.ResolveFormat(fp)
		return err == nil && len(xf) == 1 && xf[0].Code == "old.id = new.id; old.body = new.body;"
	})
}
