package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pbio"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Client defaults.
const (
	DefaultTimeout   = 2 * time.Second // per-RPC deadline
	DefaultNegTTL    = 5 * time.Second // unknown-fingerprint memory
	DefaultBackoff   = 2 * time.Second // down-state duration after a transport failure
	DefaultCacheSize = 1024            // resolved-entry LRU capacity
)

// Client is the in-process side of the format registry: a cached,
// deduplicated resolver plugging into all three integration points —
// wire.WithResolver (it implements wire.FormatResolver), the
// wire.WithFormatSuppressor predicate (Holds), and core.WithTransformSource
// (TransformsFor).
//
// The client dials lazily and fails softly. Any transport failure (dial,
// write, timeout, connection drop) flips it into a "down" state for a
// backoff period during which Holds reports false — so senders resume
// in-band format frames — and Resolve fails fast with ErrDown — so
// receivers park and NACK instead of stalling on a dead daemon. Cached
// entries keep serving throughout: a registry outage only costs the
// fingerprints nobody has seen yet.
type Client struct {
	addr     string
	timeout  time.Duration
	negTTL   time.Duration
	backoff  time.Duration
	cacheCap int

	tracer *trace.Tracer

	hits       *obs.Counter   // registry.hits: resolutions served from the LRU
	misses     *obs.Counter   // registry.misses: cold fetches the daemon answered with an entry
	negHits    *obs.Counter   // registry.negative_hits: unknown-fingerprint cache hits
	unknowns   *obs.Counter   // registry.unknowns: daemon round-trips answered "unknown fingerprint"
	errs       *obs.Counter   // registry.errors: transport-level RPC failures
	downs      *obs.Counter   // registry.downs: transitions into the down state
	watchEvs   *obs.Counter   // registry.watch_events: invalidation events applied
	watchResub *obs.Counter   // registry.watch_resubscribes: watch re-established after a failure
	reregs     *obs.Counter   // registry.reregisters: published entries re-announced after an instance change
	fetchNS    *obs.Histogram // registry.fetch_ns: cold resolution round-trip latency

	// Connection layer: one wire.Conn to the daemon, redialed on demand,
	// with in-flight RPCs matched to responses by request id.
	mu        sync.Mutex
	closed    bool
	conn      *wire.Conn
	nextID    uint64
	pending   map[uint64]chan rpcResp
	downUntil time.Time
	published map[uint64]publishedEntry // entries the daemon acknowledged (Holds; re-registered on instance change)

	// Watch state (guarded by mu except watchSeq, which lives under cmu
	// with the caches it orders). wantWatch arms automatic resubscription:
	// it is set the moment a subscription is *wanted* (Watch called, or any
	// successful dial's auto-subscribe), not only once one has succeeded —
	// a client that boots while the daemon is down (mid-failover, say) must
	// still converge on its own. watchPending coalesces concurrent
	// subscription attempts; watchInst is the daemon instance the seqno
	// belongs to, so a restarted daemon resets the replay cursor.
	watchDisabled bool
	watchPending  bool
	wantWatch     bool
	everWatched   bool
	watchInst     uint64
	resubTimer    *time.Timer

	// Cluster-mode hooks (set only by NewClusterClient on its per-peer
	// children; both fire on their own goroutines). onDown fires on every
	// transition into the down state, onWatchUp after every successful watch
	// subscription with whether the daemon instance changed.
	onDown    func()
	onWatchUp func(instChanged bool)

	// Watch-event subscribers (guarded by mu): callbacks observing every
	// applied table mutation, keyed for removal. Consumers hook cache
	// invalidation here — e.g. a Morpher dropping its cached decision for a
	// fingerprint whose transform set just changed under it.
	eventSubs map[uint64]func(fp uint64)
	nextSub   uint64
	// Callback dispatch is decoupled from the watch pump: the pump enqueues
	// fingerprints here (coalesced — Invalidate-style callbacks are
	// idempotent per fp) and a dispatcher goroutine (subRunning) drains them.
	// A callback is allowed to block: if it contended on a lock held by a
	// caller that is itself waiting for an RPC response on this client's
	// connection (a morpher mid-decision doing a fresh read), an in-pump
	// callback would wedge the pump and deadlock the response it waits for.
	subPending map[uint64]struct{}
	subRunning bool

	// Cluster routing (set only on a NewClusterClient parent, which uses
	// none of the transport fields above): one child client per peer, and
	// the fingerprint-space shard count steering route(). reconverging
	// coalesces concurrent reconvergence sweeps (guarded by mu).
	children     []*Client
	shards       int
	reconverging bool

	// Cache layer: positive LRU + negative TTL map + singleflight table.
	cmu      sync.Mutex
	lru      map[uint64]*cacheEntry
	head     *cacheEntry // most recent
	tail     *cacheEntry // least recent
	neg      map[uint64]time.Time
	flight   map[uint64]*flightCall
	watchSeq uint64 // last event seqno applied to the caches
}

// rpcResp is one matched RPC response (payload is a private copy).
type rpcResp struct {
	status  byte
	payload []byte
	err     error
}

// publishedEntry is one format this client registered and the daemon
// acknowledged. Keeping the full entry (not just the fingerprint) lets the
// client re-announce everything it published when it discovers a daemon
// instance change — a promoted standby or a restarted primary may have
// missed writes the dead incarnation acknowledged but never replicated, and
// re-registration closes exactly that gap.
type publishedEntry struct {
	format *pbio.Format
	xforms []*core.Xform
}

// cacheEntry is one resolved format in the intrusive LRU list. gen is the
// watch-event seqno that installed (or last refreshed) the entry — 0 when it
// came from a cold fetch, a Register acknowledgment, or cluster read-repair.
// ResolveFormat compares gen against the seqno it observed before
// dispatching a cold fetch, so a fetch result that was overtaken by an
// invalidation event mid-flight can never overwrite the event's fresher
// entry.
type cacheEntry struct {
	fp         uint64
	format     *pbio.Format
	xforms     []*core.Xform
	gen        uint64
	prev, next *cacheEntry
}

// flightCall deduplicates concurrent misses on one fingerprint: followers
// wait on done and share the leader's outcome.
type flightCall struct {
	done   chan struct{}
	format *pbio.Format
	xforms []*core.Xform
	err    error
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientObs attaches an observability registry; the client mirrors its
// cache and RPC activity into "registry.*" instruments.
func WithClientObs(reg *obs.Registry) ClientOption {
	return func(c *Client) {
		c.hits = reg.Counter("registry.hits")
		c.misses = reg.Counter("registry.misses")
		c.negHits = reg.Counter("registry.negative_hits")
		c.unknowns = reg.Counter("registry.unknowns")
		c.errs = reg.Counter("registry.errors")
		c.downs = reg.Counter("registry.downs")
		c.watchEvs = reg.Counter("registry.watch_events")
		c.watchResub = reg.Counter("registry.watch_resubscribes")
		c.reregs = reg.Counter("registry.reregisters")
		c.fetchNS = reg.Histogram("registry.fetch_ns")
	}
}

// WithWatchDisabled turns off the watch/invalidation stream: the client
// never subscribes (not even automatically after its first dial) and relies
// purely on poll-on-miss resolution with negative TTLs, as before watch
// support existed. Useful to isolate cache behavior in tests and to pin the
// PR 4 wire profile.
func WithWatchDisabled() ClientOption {
	return func(c *Client) { c.watchDisabled = true }
}

// WithClientTracer attaches a tracer: each daemon round-trip records a
// registry_fetch span (head-sampled like any root).
func WithClientTracer(t *trace.Tracer) ClientOption {
	return func(c *Client) { c.tracer = t }
}

// WithTimeout overrides the per-RPC deadline.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithNegTTL overrides how long an unknown-fingerprint answer is remembered.
func WithNegTTL(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.negTTL = d
		}
	}
}

// WithBackoff overrides the down-state duration after a transport failure.
func WithBackoff(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// WithCacheSize overrides the resolved-entry LRU capacity.
func WithCacheSize(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.cacheCap = n
		}
	}
}

// NewClient returns a client for the daemon at addr. No connection is made
// until the first RPC, so constructing a client against a daemon that is
// not running (yet) is valid — everything degrades to in-band exchange.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr:      addr,
		timeout:   DefaultTimeout,
		negTTL:    DefaultNegTTL,
		backoff:   DefaultBackoff,
		cacheCap:  DefaultCacheSize,
		pending:   make(map[uint64]chan rpcResp),
		published: make(map[uint64]publishedEntry),
		lru:       make(map[uint64]*cacheEntry),
		neg:       make(map[uint64]time.Time),
		flight:    make(map[uint64]*flightCall),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Close tears down the connection and fails all in-flight RPCs. On a
// cluster client it closes every per-peer child.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	if c.resubTimer != nil {
		c.resubTimer.Stop()
		c.resubTimer = nil
	}
	c.failPendingLocked(ErrClosed)
	conn := c.conn
	c.conn = nil
	children := c.children
	c.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	for _, ch := range children {
		if cerr := ch.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Register publishes a format (and the transforms declared with it) to the
// daemon. On acknowledgment the fingerprint is remembered so Holds — and
// through it the wire-layer format suppressor — reports it resolvable, any
// negative-cache entry for the fingerprint is purged, and the entry is
// inserted into the LRU — a client that had resolved the fingerprint to
// ErrUnknownFingerprint must not keep serving the stale miss for the rest
// of the negative TTL after it registered that very format itself.
func (c *Client) Register(f *pbio.Format, xforms ...*core.Xform) error {
	if f == nil {
		return fmt.Errorf("registry: nil format")
	}
	if c.children != nil {
		return c.clusterRegister(f, xforms)
	}
	resp, err := c.rpc(opPut, encodeEntry(f, xforms))
	if err != nil {
		return err
	}
	switch resp.status {
	case statusOK:
		fp := f.Fingerprint()
		c.mu.Lock()
		c.published[fp] = publishedEntry{format: f, xforms: xforms}
		c.mu.Unlock()
		c.cmu.Lock()
		delete(c.neg, fp)
		c.insertLocked(fp, f, xforms)
		c.cmu.Unlock()
		return nil
	case statusRetry:
		// A cluster peer without a current write path (election in flight,
		// or its forward to the primary failed). The write was not applied.
		return fmt.Errorf("%w: put %q: %s", ErrRetryable, f.Name(), resp.payload)
	default:
		return fmt.Errorf("registry: put %q rejected: %s", f.Name(), resp.payload)
	}
}

// Holds reports whether the daemon is known to hold f's entry and the
// client is currently healthy. It is the wire.WithFormatSuppressor
// predicate: true means the peer can resolve the fingerprint out-of-band,
// so the in-band format frame may be skipped. An entry counts as held when
// this client published it (acknowledged Register) or resolved it from the
// daemon (LRU) — an intermediary that learned a format out-of-band can
// immediately suppress it downstream. While down it reports false — new
// connections re-announce in-band — and connections that already suppressed
// recover through the frameFormatReq protocol.
func (c *Client) Holds(f *pbio.Format) bool {
	if c.children != nil {
		for _, ch := range c.children {
			if ch.Holds(f) {
				return true
			}
		}
		return false
	}
	fp := f.Fingerprint()
	c.mu.Lock()
	down := c.closed || time.Now().Before(c.downUntil)
	_, published := c.published[fp]
	c.mu.Unlock()
	if down {
		return false
	}
	if published {
		return true
	}
	c.cmu.Lock()
	_, cached := c.lru[fp]
	c.cmu.Unlock()
	return cached
}

// Down reports whether the client cannot currently reach the daemon: it is
// in its backed-off down state, or it has been closed. Closed counts as
// down for the same reason it does in Holds — every RPC on a closed client
// fails with ErrClosed, so reporting "not down" would be a lie.
func (c *Client) Down() bool {
	if c.children != nil {
		for _, ch := range c.children {
			if !ch.Down() {
				return false
			}
		}
		return true // down only when every replica is
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed || time.Now().Before(c.downUntil)
}

// WatchActive reports whether the invalidation stream is currently live: a
// watch subscription succeeded (Watch or an automatic resubscribe) and the
// connection it rode is still up. False while the stream is being
// re-established after a failure — the window in which cached misses can go
// stale for a full negative TTL again. It is the signal /readyz watch
// probes want; a client that never subscribed (or whose daemon predates
// watch) reports false, since no invalidations are flowing.
func (c *Client) WatchActive() bool {
	if c.children != nil {
		for _, ch := range c.children {
			if ch.WatchActive() {
				return true
			}
		}
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed && c.everWatched && c.conn != nil
}

// ResolveFormat resolves a fingerprint to its format description and
// transform meta-data: LRU hit (allocation-free), negative-cache hit
// (ErrUnknownFingerprint), or a singleflight-deduplicated daemon round-trip.
// It implements wire.FormatResolver.
func (c *Client) ResolveFormat(fp uint64) (*pbio.Format, []*core.Xform, error) {
	if c.children != nil {
		return c.clusterResolve(fp)
	}
	c.cmu.Lock()
	if e := c.lru[fp]; e != nil {
		c.moveFrontLocked(e)
		// Copy the fields while still holding cmu: a watch event refreshes
		// entries in place, so dereferencing e after the unlock races it.
		f, xf := e.format, e.xforms
		c.cmu.Unlock()
		c.hits.Inc()
		return f, xf, nil
	}
	if exp, ok := c.neg[fp]; ok {
		if time.Now().Before(exp) {
			c.cmu.Unlock()
			c.negHits.Inc()
			return nil, nil, fmt.Errorf("%w: %016x (cached)", ErrUnknownFingerprint, fp)
		}
		delete(c.neg, fp)
	}
	if fc := c.flight[fp]; fc != nil {
		c.cmu.Unlock()
		<-fc.done
		return fc.format, fc.xforms, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[fp] = fc
	// Capture the watch seqno before the fetch leaves: an invalidation event
	// that lands on this fingerprint while the round-trip is in flight stamps
	// the entry with a higher gen, and the fetch result — a snapshot from
	// before the event — must then be discarded, not inserted.
	startSeq := c.watchSeq
	c.cmu.Unlock()

	fc.format, fc.xforms, fc.err = c.fetch(fp, false)

	c.cmu.Lock()
	delete(c.flight, fp)
	if e := c.lru[fp]; e != nil && e.gen > startSeq {
		// A watch event overtook the in-flight fetch: its entry is the
		// fresher truth. Serve it to this caller and every flight follower —
		// even when the daemon answered "unknown", which only means the
		// registration raced the fetch — and drop the negative entry that
		// stale unknown may have re-poisoned the cache with.
		delete(c.neg, fp)
		fc.format, fc.xforms, fc.err = e.format, e.xforms, nil
	} else if fc.err == nil {
		c.insertLocked(fp, fc.format, fc.xforms)
	}
	c.cmu.Unlock()
	close(fc.done)
	return fc.format, fc.xforms, fc.err
}

// Watch subscribes the client to the daemon's invalidation stream: from the
// acknowledgment on, every table mutation is pushed as an event that purges
// any matching negative-TTL entry and inserts (or refreshes) the LRU entry —
// so a format registered elsewhere becomes resolvable here within the
// propagation latency of one push, instead of after the negative TTL
// expires. Subscribing also replays the daemon's current table (the seqno
// handshake degrades to a full resync for a fresh subscription), pre-warming
// the cache the way a long-lived intermediary wants.
//
// Watch is called automatically after every successful dial, so most users
// never need it; call it directly to subscribe eagerly (before any RPC
// traffic) or to learn whether the daemon supports watch at all
// (ErrWatchUnsupported means it predates the protocol — the client then
// stays on poll-on-miss, exactly the pre-watch behavior).
//
// After a connection failure the client resubscribes on its own with
// jittered backoff, resuming from the last event seqno it applied; the
// daemon replays anything missed in between (or resyncs the full table when
// it cannot prove continuity — e.g. it restarted), so no invalidation is
// lost across a reconnect.
func (c *Client) Watch() error {
	if c.children != nil {
		// Subscribe every replica; the cluster converges if any stream is
		// live, so only a unanimous failure is an error.
		var firstErr error
		ok := false
		for _, ch := range c.children {
			if err := ch.Watch(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				ok = true
			}
		}
		if ok {
			return nil
		}
		return firstErr
	}
	return c.watch(false)
}

// watch coalesces concurrent subscription attempts; probe marks background
// resubscribe attempts, whose dial failures must not refresh the down state.
func (c *Client) watch(probe bool) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.watchDisabled {
		c.mu.Unlock()
		return fmt.Errorf("%w (disabled by option)", ErrWatchUnsupported)
	}
	if c.watchPending {
		c.mu.Unlock()
		return nil // an attempt is already in flight; coalesce
	}
	c.watchPending = true
	// Arm resubscription now, not after the first success: a client that
	// boots while the daemon is down (mid-failover, say) must keep retrying
	// on its own, or it never converges.
	c.wantWatch = true
	c.mu.Unlock()
	err := c.watchOnce(probe)
	c.mu.Lock()
	c.watchPending = false
	if errors.Is(err, ErrWatchUnsupported) {
		c.wantWatch = false // a pre-watch daemon: stop retrying for good
	} else if err != nil && c.conn == nil && !c.closed {
		// The attempt failed without even a live connection (dial failure):
		// connFailed never fires for it, so arm the retry here.
		c.scheduleResubLocked()
	}
	c.mu.Unlock()
	return err
}

// watchOnce performs one hello + subscribe round-trip pair.
func (c *Client) watchOnce(probe bool) error {
	span := c.tracer.StartTrace(trace.StageRegistryWatch)
	resp, err := c.rpcMaybeProbe(opHello, nil, probe)
	if err != nil {
		span.EndErr(err)
		return err
	}
	if resp.status != statusOK {
		// A pre-watch daemon answers unknown ops with statusError: degrade
		// to poll-on-miss without arming resubscription.
		span.EndErr(ErrWatchUnsupported)
		return ErrWatchUnsupported
	}
	caps, inst, _, perr := parseHello(resp.payload)
	if perr != nil || caps&capWatch == 0 {
		span.EndErr(ErrWatchUnsupported)
		return ErrWatchUnsupported
	}

	// A different instance ID means this is not the daemon our seqno came
	// from (restart, failover): resume from zero so the daemon resyncs the
	// full table rather than trusting seqnos across incarnations.
	c.mu.Lock()
	prevInst := c.watchInst
	instChanged := inst != prevInst
	c.watchInst = inst
	c.mu.Unlock()
	c.cmu.Lock()
	if instChanged {
		c.watchSeq = 0
	}
	after := c.watchSeq
	c.cmu.Unlock()

	wresp, err := c.rpcMaybeProbe(opWatch, binary.AppendUvarint(nil, after), probe)
	if err != nil {
		span.EndErr(err)
		return err
	}
	if wresp.status != statusOK {
		span.EndErr(ErrWatchUnsupported)
		return ErrWatchUnsupported
	}
	if seq, used := binary.Uvarint(wresp.payload); used > 0 {
		span.N = int64(seq)
	}
	c.mu.Lock()
	resumed := c.everWatched
	c.everWatched = true
	onUp := c.onWatchUp
	c.mu.Unlock()
	if resumed {
		c.watchResub.Inc()
	}
	// A new daemon incarnation (restart or promoted standby) may have missed
	// writes the dead one acknowledged but never replicated; re-announce
	// everything this client published to close exactly that gap. The server
	// damps byte-identical re-registrations, so the common case is free.
	if instChanged && prevInst != 0 {
		go c.reregisterPublished()
	}
	if onUp != nil {
		go onUp(instChanged)
	}
	span.End()
	return nil
}

// reregisterPublished re-announces every format this client successfully
// registered. Called after the watch stream attaches to a daemon incarnation
// other than the one that acknowledged them.
func (c *Client) reregisterPublished() {
	c.mu.Lock()
	entries := make([]publishedEntry, 0, len(c.published))
	for _, e := range c.published {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	for _, e := range entries {
		if err := c.Register(e.format, e.xforms...); err == nil {
			c.reregs.Inc()
		}
	}
}

// cacheDirect inserts a resolved entry into this client's LRU without a
// round-trip (cluster read-repair: a failover answer warms the preferred
// replica's cache so the next hit is local and allocation-free).
func (c *Client) cacheDirect(fp uint64, f *pbio.Format, xforms []*core.Xform) {
	c.cmu.Lock()
	delete(c.neg, fp)
	c.insertLocked(fp, f, xforms)
	c.cmu.Unlock()
}

// onEvent applies one pushed table mutation to the caches: the negative
// entry (if any) is purged and the entry inserted into the LRU, so the
// staleness window of a cached miss collapses from the negative TTL to the
// push propagation latency.
func (c *Client) onEvent(seq uint64, rest []byte) {
	fp, blob, err := parseEvent(rest)
	if err != nil {
		return
	}
	// Copy before decoding: the frame body aliases the pump conn's pooled
	// read buffer, while the decoded entry outlives this call in the LRU.
	e, derr := decodeEntry(append([]byte(nil), blob...))
	if derr != nil || e.Format.Fingerprint() != fp {
		return // a malformed push must not poison the cache
	}
	span := c.tracer.StartTrace(trace.StageRegistryWatch)
	span.FP = fp
	span.N = int64(seq)
	c.cmu.Lock()
	delete(c.neg, fp)
	c.insertLocked(fp, e.Format, e.Xforms)
	if ce := c.lru[fp]; ce != nil && seq > ce.gen {
		ce.gen = seq
	}
	if seq > c.watchSeq {
		c.watchSeq = seq
	}
	c.cmu.Unlock()
	c.watchEvs.Inc()
	// Hand the fingerprint to the dispatcher instead of invoking callbacks
	// here: this runs on the connection's read pump, and a callback that
	// blocks (say, on a morpher lock held by a decision that is itself
	// waiting for a fresh-read response from this very connection) would
	// stop the pump from ever delivering that response. Coalescing by
	// fingerprint is lossless for invalidation semantics.
	c.mu.Lock()
	if len(c.eventSubs) > 0 && !c.closed {
		if c.subPending == nil {
			c.subPending = make(map[uint64]struct{})
		}
		c.subPending[fp] = struct{}{}
		if !c.subRunning {
			c.subRunning = true
			go c.dispatchEvents()
		}
	}
	c.mu.Unlock()
	span.End()
}

// dispatchEvents drains subPending, invoking every registered event callback
// for each pending fingerprint, until the queue is empty or the client
// closes. It runs on its own goroutine so callbacks may block without
// stalling the watch pump; the caches already reflect every enqueued event
// by the time its callback fires.
func (c *Client) dispatchEvents() {
	for {
		c.mu.Lock()
		if c.closed || len(c.subPending) == 0 {
			c.subRunning = false
			c.mu.Unlock()
			return
		}
		pending := c.subPending
		c.subPending = make(map[uint64]struct{})
		subs := make([]func(fp uint64), 0, len(c.eventSubs))
		for _, fn := range c.eventSubs {
			subs = append(subs, fn)
		}
		c.mu.Unlock()
		for fp := range pending {
			for _, fn := range subs {
				fn(fp)
			}
		}
	}
}

// OnEvent registers fn to run after every watch event this client applies to
// its caches, with the event's fingerprint. It returns a function that
// removes the registration — callers with a shorter lifetime than the client
// (a subscriber connection on a process-wide registry client) must call it
// on teardown or the client accumulates dead callbacks. fn runs on a
// dispatcher goroutine (never the watch pump) after the caches already
// reflect the event, so a callback that re-resolves the fingerprint sees the
// fresh entry, and it may block without stalling event application. Bursts
// are coalesced by fingerprint, so fn fires at least once after the last
// event for a fingerprint, not once per event. On a cluster client the
// registration spans every replica's stream (the same mutation may fire fn
// once per replica that pushes it).
func (c *Client) OnEvent(fn func(fp uint64)) func() {
	if c.children != nil {
		removes := make([]func(), 0, len(c.children))
		for _, ch := range c.children {
			removes = append(removes, ch.OnEvent(fn))
		}
		return func() {
			for _, r := range removes {
				r()
			}
		}
	}
	c.mu.Lock()
	if c.eventSubs == nil {
		c.eventSubs = make(map[uint64]func(fp uint64))
	}
	id := c.nextSub
	c.nextSub++
	c.eventSubs[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.eventSubs, id)
		c.mu.Unlock()
	}
}

// scheduleResubLocked (mu held) arms one jittered resubscription attempt
// after the backoff, if a subscription is wanted (ever attempted) — not only
// if one ever succeeded.
func (c *Client) scheduleResubLocked() {
	if c.closed || c.watchDisabled || !c.wantWatch || c.resubTimer != nil {
		return
	}
	delay := c.backoff + time.Duration(rand.Int63n(int64(c.backoff)/2+1))
	c.resubTimer = time.AfterFunc(delay, c.resubscribe)
}

// resubscribe is the resubTimer callback: one Watch attempt, rescheduled on
// transient failure.
func (c *Client) resubscribe() {
	c.mu.Lock()
	c.resubTimer = nil
	if c.closed || c.conn != nil {
		// Closed, or a foreground RPC already redialed — and every
		// successful dial re-subscribes on its own.
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	err := c.watch(true)
	if err == nil || errors.Is(err, ErrWatchUnsupported) || errors.Is(err, ErrClosed) {
		return
	}
	c.mu.Lock()
	c.scheduleResubLocked()
	c.mu.Unlock()
}

// TransformsFor returns the transform meta-data registered for a
// fingerprint, or nil when it cannot be resolved. It is the
// core.WithTransformSource hook: consulted on the Morpher's cold decision
// path before a message is rejected.
func (c *Client) TransformsFor(fp uint64) []*core.Xform {
	_, xforms, err := c.ResolveFormat(fp)
	if err != nil {
		return nil
	}
	return xforms
}

// ResolveFormatFresh resolves a fingerprint with a daemon round-trip,
// bypassing the LRU and negative caches. Fingerprints are structural, so an
// evolving protocol can legitimately reuse one (a reorder that returns to an
// earlier layout), and the daemon's entry — last write wins — then carries a
// transform set every cached copy predates; the watch event that would
// refresh those copies can lose the race to the data frame that needs it.
// This is the read for callers who suspect exactly that: it returns what the
// daemon holds NOW, refreshes the LRU with it (unless a concurrent watch
// event installed something fresher mid-flight), and on a cluster client
// unions the transform sets of every reachable replica so one lagging
// standby cannot hide a transform the primary already acknowledged. Failures
// leave the positive cache untouched; a daemon that answers "unknown" starts
// the negative TTL as any cold fetch does.
func (c *Client) ResolveFormatFresh(fp uint64) (*pbio.Format, []*core.Xform, error) {
	if c.children != nil {
		return c.clusterResolveFresh(fp)
	}
	c.cmu.Lock()
	startSeq := c.watchSeq
	c.cmu.Unlock()
	// Forced past the down gate: after a failover the replica most likely to
	// hold the entry is the just-restarted one still inside its backoff
	// window, and this read is the last consult before live data is rejected.
	f, xforms, err := c.fetch(fp, true)
	if err != nil {
		return nil, nil, err
	}
	c.cmu.Lock()
	if e := c.lru[fp]; e != nil && e.gen > startSeq {
		// A watch event overtook the fetch; its entry is the fresher truth.
		f, xforms = e.format, e.xforms
	} else {
		delete(c.neg, fp)
		c.insertLocked(fp, f, xforms)
	}
	c.cmu.Unlock()
	return f, xforms, nil
}

// TransformsForFresh is ResolveFormatFresh reduced to the transform list, or
// nil when the round-trip fails. It is the core.WithFreshTransformSource
// hook: the Morpher's last consultation before caching a reject.
func (c *Client) TransformsForFresh(fp uint64) []*core.Xform {
	_, xforms, err := c.ResolveFormatFresh(fp)
	if err != nil {
		return nil
	}
	return xforms
}

// fetch performs one cold resolution round-trip. force routes the RPC past
// the down-state gate (the fresh-read contract; see rpcForce).
func (c *Client) fetch(fp uint64, force bool) (*pbio.Format, []*core.Xform, error) {
	span := c.tracer.StartTrace(trace.StageRegistryFetch)
	span.FP = fp
	var t0 time.Time
	if c.fetchNS != nil {
		t0 = time.Now()
	}
	var key [8]byte
	binary.LittleEndian.PutUint64(key[:], fp)
	var resp rpcResp
	var err error
	if force {
		resp, err = c.rpcForce(opGet, key[:])
	} else {
		resp, err = c.rpc(opGet, key[:])
	}
	if c.fetchNS != nil {
		c.fetchNS.ObserveNS(time.Since(t0).Nanoseconds())
	}
	if err != nil {
		span.EndErr(err)
		return nil, nil, err
	}
	// Counted per status below: misses are round-trips the daemon answered
	// with an entry, unknowns the ones it answered "unknown fingerprint" —
	// previously both inflated misses AND the repeats then counted as
	// negative_hits, double-billing every unknown.
	switch resp.status {
	case statusOK:
		c.misses.Inc()
		e, derr := decodeEntry(resp.payload)
		if derr != nil {
			span.EndErr(derr)
			return nil, nil, derr
		}
		if got := e.Format.Fingerprint(); got != fp {
			err := fmt.Errorf("registry: daemon answered %016x with entry %016x", fp, got)
			span.EndErr(err)
			return nil, nil, err
		}
		span.N = int64(len(resp.payload))
		span.End()
		return e.Format, e.Xforms, nil
	case statusUnknown:
		c.unknowns.Inc()
		c.cmu.Lock()
		c.neg[fp] = time.Now().Add(c.negTTL)
		c.cmu.Unlock()
		span.Err = true
		span.End()
		return nil, nil, fmt.Errorf("%w: %016x", ErrUnknownFingerprint, fp)
	default:
		err := fmt.Errorf("registry: get %016x: %s", fp, resp.payload)
		span.EndErr(err)
		return nil, nil, err
	}
}

// rpc sends one request and waits for its matched response or the deadline.
func (c *Client) rpc(op byte, payload []byte) (rpcResp, error) {
	return c.rpcOpts(op, payload, false, false)
}

// rpcMaybeProbe is rpc with one twist for background watch probes: a failed
// dial does not refresh the down state. The client already entered it when
// the connection died, and the probe repeats every ~backoff — letting it
// re-mark down each time would pin the client down forever, and the
// suppressor would never re-enter the optimistic post-backoff mode the wire
// layer's park/NACK/re-announce recovery is designed around. A probe that
// got as far as a live connection reports failures normally.
func (c *Client) rpcMaybeProbe(op byte, payload []byte, probe bool) (rpcResp, error) {
	return c.rpcOpts(op, payload, probe, false)
}

// rpcForce is rpc past the down gate: it attempts a real dial and round-trip
// even while the client is inside its post-failure backoff window. The gate
// exists to keep ordinary traffic from hammering a dead daemon, but the
// fresh-read path (ResolveFormatFresh) is a last consult before rejecting
// live data — and the replica most likely to hold the newest entry after a
// failover is exactly the just-restarted one the gate still writes off. A
// forced round-trip that succeeds clears the down state: the daemon has
// demonstrably answered, so making cached reads and the Holds suppressor
// wait out the rest of the backoff would be pure lag.
func (c *Client) rpcForce(op byte, payload []byte) (rpcResp, error) {
	return c.rpcOpts(op, payload, false, true)
}

func (c *Client) rpcOpts(op byte, payload []byte, probe, force bool) (rpcResp, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return rpcResp{}, ErrClosed
	}
	if !force && time.Now().Before(c.downUntil) {
		c.mu.Unlock()
		return rpcResp{}, fmt.Errorf("%w until %s", ErrDown, c.downUntil.Format(time.RFC3339))
	}
	if c.conn == nil {
		if err := c.dialLocked(); err != nil {
			// Forced RPCs share the probe exemption: the client is already
			// down, and a fresh read retrying through the window must not
			// keep pushing the deadline out.
			if !probe && !force {
				c.markDownLocked()
				c.scheduleResubLocked()
			}
			c.mu.Unlock()
			c.errs.Inc()
			return rpcResp{}, err
		}
	}
	c.nextID++
	id := c.nextID
	ch := make(chan rpcResp, 1)
	c.pending[id] = ch
	conn := c.conn
	c.mu.Unlock()

	if err := conn.WriteControl(wire.FrameRegistry, appendRequest(nil, op, id, payload)); err != nil {
		c.connFailed(conn, err)
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.errs.Inc()
		return rpcResp{}, fmt.Errorf("registry: rpc write: %w", err)
	}

	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.err != nil {
			c.errs.Inc()
			return rpcResp{}, resp.err
		}
		if force {
			c.mu.Lock()
			if time.Now().Before(c.downUntil) {
				c.downUntil = time.Time{}
			}
			c.mu.Unlock()
		}
		return resp, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.markDownLocked()
		c.mu.Unlock()
		c.errs.Inc()
		return rpcResp{}, fmt.Errorf("registry: rpc timeout after %s", c.timeout)
	}
}

// dialLocked connects to the daemon and starts the response pump.
func (c *Client) dialLocked() error {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("registry: dial %s: %w", c.addr, err)
	}
	var conn *wire.Conn
	conn = wire.NewConn(nc, wire.WithControlHook(wire.FrameRegistry, func(body []byte) error {
		c.onResponse(body)
		return nil
	}))
	c.conn = conn
	go c.pump(conn)
	// Every fresh connection (re)subscribes to the invalidation stream,
	// unless a Watch call is the very reason we are dialing. Best-effort and
	// asynchronous: a daemon that predates watch answers with an error and
	// the client silently stays on poll-on-miss.
	if !c.watchDisabled && !c.watchPending {
		go func() { _ = c.Watch() }()
	}
	return nil
}

// pump drives the connection's read loop; registry responses arrive through
// the control hook, so ReadEncoded only ever returns on connection failure.
func (c *Client) pump(conn *wire.Conn) {
	for {
		if _, _, err := conn.ReadEncoded(); err != nil {
			c.connFailed(conn, fmt.Errorf("registry: connection lost: %w", err))
			return
		}
	}
}

// onResponse matches one response frame to its waiting RPC, and dispatches
// watch-event pushes (which have no waiting RPC — the reqID slot carries the
// event seqno). The payload is copied: the frame body aliases a pooled
// buffer owned by the pump's conn.
func (c *Client) onResponse(body []byte) {
	op, reqID, rest, err := parseHeader(body)
	if err != nil {
		return // not a frame we understand; ignore rather than kill the conn
	}
	if op == opEvent {
		c.onEvent(reqID, rest)
		return
	}
	switch op {
	case opGetResp, opPutResp, opHelloResp, opWatchResp, opUnwatchResp:
	default:
		return
	}
	if len(rest) < 1 {
		return
	}
	resp := rpcResp{status: rest[0], payload: append([]byte(nil), rest[1:]...)}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- resp
	}
}

// connFailed reacts to a dead connection: drop it (if still current), fail
// every in-flight RPC, and enter the down state.
func (c *Client) connFailed(conn *wire.Conn, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != conn {
		return // already superseded
	}
	_ = c.conn.Close()
	c.conn = nil
	c.failPendingLocked(err)
	if !c.closed {
		c.markDownLocked()
		// The subscription died with the connection; arm a jittered
		// background resubscribe so invalidations resume even if no
		// foreground RPC ever redials.
		c.scheduleResubLocked()
	}
}

func (c *Client) failPendingLocked(err error) {
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- rpcResp{err: err}
	}
}

func (c *Client) markDownLocked() {
	c.downUntil = time.Now().Add(c.backoff)
	c.downs.Inc()
	if c.onDown != nil {
		go c.onDown()
	}
}

// insertLocked adds a resolved entry at the LRU front, evicting the tail
// past capacity.
func (c *Client) insertLocked(fp uint64, f *pbio.Format, xforms []*core.Xform) {
	if e := c.lru[fp]; e != nil {
		e.format, e.xforms = f, xforms
		c.moveFrontLocked(e)
		return
	}
	e := &cacheEntry{fp: fp, format: f, xforms: xforms}
	c.lru[fp] = e
	c.pushFrontLocked(e)
	if len(c.lru) > c.cacheCap && c.tail != nil {
		evict := c.tail
		c.unlinkLocked(evict)
		delete(c.lru, evict.fp)
	}
}

func (c *Client) pushFrontLocked(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Client) unlinkLocked(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Client) moveFrontLocked(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}
