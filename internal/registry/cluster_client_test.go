package registry

import (
	"encoding/json"
	"errors"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestResubscribeArmsWithoutFirstSuccess is the regression test for the
// failover-boot gap: the resubscribe loop used to arm only after a first
// *successful* subscription, so a client that booted while the daemon was
// down (mid-failover in a cluster) never converged on its own — its first
// Watch failed on dial and nothing ever retried. Arming must happen on any
// subscription attempt.
func TestResubscribeArmsWithoutFirstSuccess(t *testing.T) {
	// Reserve an address with no daemon behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg), WithBackoff(20*time.Millisecond))
	defer c.Close()
	if err := c.Watch(); err == nil {
		t.Fatal("Watch against a dead address succeeded")
	}
	if c.WatchActive() {
		t.Fatal("watch reports active after a failed first subscription")
	}

	// The daemon comes up *after* the failed first attempt (the failover
	// completes). The client must subscribe on its own — no foreground RPC
	// nudges it.
	srv, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var ln2 net.Listener
	waitFor(t, "rebinding the daemon address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	go func() { _ = srv.Serve(ln2) }()

	waitFor(t, "self-armed resubscription", func() bool { return c.WatchActive() })

	// And it is a real subscription: a registration elsewhere reaches this
	// client as a pushed event.
	pub := NewClient(addr)
	defer pub.Close()
	f := testFormat(t, "lateboot", 1)
	if err := pub.Register(f); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "event delivery on the self-armed stream", func() bool { return c.Holds(f) })
}

// TestWatchRingSizeOption: the replay ring depth is a ServerOption, and the
// configured capacity plus live occupancy surface in /debug/registryz.
func TestWatchRingSizeOption(t *testing.T) {
	srv, err := NewServer(WithWatchRingSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 7; i++ {
		if err := srv.Put(testFormat(t, "ring", i)); err != nil {
			t.Fatal(err)
		}
	}
	rr := httptest.NewRequest("GET", RegistryzPath, nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, rr)
	var doc struct {
		WatchRingCap int    `json:"watch_ring_cap"`
		WatchRingLen int    `json:"watch_ring_len"`
		WatchSeq     uint64 `json:"watch_seq"`
	}
	if err := json.NewDecoder(w.Body).Decode(&doc); err != nil {
		t.Fatalf("registryz JSON: %v", err)
	}
	if doc.WatchRingCap != 4 {
		t.Errorf("watch_ring_cap = %d, want 4", doc.WatchRingCap)
	}
	if doc.WatchRingLen != 4 {
		t.Errorf("watch_ring_len = %d after 7 puts into a 4-ring, want 4", doc.WatchRingLen)
	}
	if doc.WatchSeq != 7 {
		t.Errorf("watch_seq = %d, want 7", doc.WatchSeq)
	}
}

// TestReregisterOnInstanceChange: a client whose watch stream reattaches to
// a *different* daemon incarnation (restart with an empty table here; a
// promoted standby in a cluster) must re-announce everything it published —
// the dead incarnation may have acknowledged writes nobody else ever saw.
func TestReregisterOnInstanceChange(t *testing.T) {
	srv1, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go func() { _ = srv1.Serve(ln1) }()

	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg), WithBackoff(20*time.Millisecond))
	defer c.Close()
	if err := c.Watch(); err != nil {
		t.Fatal(err)
	}
	f := testFormat(t, "survivor", 2)
	if err := c.Register(f); err != nil {
		t.Fatal(err)
	}

	// The daemon dies taking its table with it; a fresh, empty incarnation
	// appears on the same address.
	_ = srv1.Close()
	srv2, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var ln2 net.Listener
	waitFor(t, "rebinding the daemon address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	go func() { _ = srv2.Serve(ln2) }()

	// The client reattaches, notices the instance change, and re-registers
	// its published formats without any help.
	waitFor(t, "re-registration on the new incarnation", func() bool {
		_, err := srv2.Resolve(f.Fingerprint())
		return err == nil
	})
	if reg.Counter("registry.reregisters").Load() == 0 {
		t.Error("registry.reregisters = 0; the entry arrived some other way")
	}
}

// TestClusterClientRoutingAndReadRepair: reads route to the shard-preferred
// replica, fail over to the rest, and repair the preferred replica's cache;
// unknown fingerprints are only believed when every replica agrees.
func TestClusterClientRoutingAndReadRepair(t *testing.T) {
	srvA, addrA := startDaemon(t)
	srvB, addrB := startDaemon(t)
	defer srvA.Close()
	defer srvB.Close()

	f := testFormat(t, "routed", 1)
	// Only B holds the entry: whatever replica fp prefers, resolution must
	// succeed by failing over (replicas normally converge; this asymmetry
	// isolates the failover path).
	if err := srvB.Put(f); err != nil {
		t.Fatal(err)
	}

	cc := NewClusterClient([]string{addrA, addrB}, 4, WithWatchDisabled(), WithNegTTL(50*time.Millisecond))
	defer cc.Close()
	rf, _, err := cc.ResolveFormat(f.Fingerprint())
	if err != nil || rf.Fingerprint() != f.Fingerprint() {
		t.Fatalf("cluster resolve: %v", err)
	}
	// Read repair: the preferred child now holds the entry in its LRU, so a
	// repeat resolve is a local hit even if it routed to A first.
	pref := cc.ClusterChildren()[cc.route(f.Fingerprint())]
	pref.cmu.Lock()
	_, cached := pref.lru[f.Fingerprint()]
	pref.cmu.Unlock()
	if !cached {
		t.Error("preferred replica's LRU not repaired after a failover answer")
	}

	// A fingerprint nobody holds: unknown only after every replica said so.
	if _, _, err := cc.ResolveFormat(0xdeadbeef); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}
}
