package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pbio"
	"repro/internal/wire"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestRegisterPurgesNegativeCache is the regression test for the verified
// staleness bug: a client that resolved a fingerprint to
// ErrUnknownFingerprint, then registered that very format, kept serving the
// cached miss until the negative TTL expired. Register must purge the
// negative entry and insert the entry into the LRU. Watch is disabled so
// the purge is attributable to Register alone, not to the event stream.
func TestRegisterPurgesNegativeCache(t *testing.T) {
	_, addr := startDaemon(t)
	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg), WithNegTTL(time.Hour), WithWatchDisabled())
	defer c.Close()

	f := testFormat(t, "latecomer", 1)
	if _, _, err := c.ResolveFormat(f.Fingerprint()); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}
	if err := c.Register(f); err != nil {
		t.Fatal(err)
	}

	// The miss must clear immediately — not after the hour-long TTL — and
	// the entry must come from the LRU, not another daemon round-trip.
	misses0 := reg.Counter("registry.misses").Load()
	rf, _, err := c.ResolveFormat(f.Fingerprint())
	if err != nil {
		t.Fatalf("cached miss survived Register: %v", err)
	}
	if rf.Fingerprint() != f.Fingerprint() {
		t.Fatalf("resolved wrong format %016x", rf.Fingerprint())
	}
	if got := reg.Counter("registry.misses").Load(); got != misses0 {
		t.Errorf("resolution after Register went to the daemon (%d cold fetches)", got-misses0)
	}
	if reg.Counter("registry.hits").Load() == 0 {
		t.Error("resolution after Register was not an LRU hit")
	}
}

// TestDownWhenClosed: a closed client fails every RPC with ErrClosed, so
// Down must report true — consistently with Holds, which already treats
// closed as down.
func TestDownWhenClosed(t *testing.T) {
	_, addr := startDaemon(t)
	c := NewClient(addr)
	if c.Down() {
		t.Fatal("fresh client reports down")
	}
	_ = c.Close()
	if !c.Down() {
		t.Fatal("closed client reports not down, but every RPC fails with ErrClosed")
	}
}

// TestFetchMetricsSplit: daemon round-trips answered "unknown fingerprint"
// must count as registry.unknowns, not inflate registry.misses (which then
// double-billed with negative_hits on the repeats).
func TestFetchMetricsSplit(t *testing.T) {
	srv, addr := startDaemon(t)
	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg), WithNegTTL(time.Hour), WithWatchDisabled())
	defer c.Close()

	if _, _, err := c.ResolveFormat(0xfee1dead); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}
	if got := reg.Counter("registry.unknowns").Load(); got != 1 {
		t.Errorf("unknowns = %d, want 1", got)
	}
	if got := reg.Counter("registry.misses").Load(); got != 0 {
		t.Errorf("misses = %d after an unknown-only round-trip, want 0", got)
	}

	f := testFormat(t, "known", 0)
	if err := srv.Put(f); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ResolveFormat(f.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("registry.misses").Load(); got != 1 {
		t.Errorf("misses = %d after one entry-answering round-trip, want 1", got)
	}
	if got := reg.Counter("registry.unknowns").Load(); got != 1 {
		t.Errorf("unknowns = %d, want still 1", got)
	}
}

// TestWatchInvalidatesNegativeCache is the tentpole's acceptance scenario:
// a format registered by one peer *after* another peer cached a negative
// resolution becomes resolvable on that peer without waiting out the
// negative TTL — the daemon pushes the registration as an invalidation
// event.
func TestWatchInvalidatesNegativeCache(t *testing.T) {
	_, addr := startDaemon(t)
	reg := obs.NewRegistry("test")
	watcher := NewClient(addr, WithClientObs(reg), WithNegTTL(time.Hour))
	defer watcher.Close()
	if err := watcher.Watch(); err != nil {
		t.Fatal(err)
	}

	f := testFormat(t, "pushed", 2)
	fp := f.Fingerprint()
	if _, _, err := watcher.ResolveFormat(fp); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}

	// A different client registers the format.
	pub := NewClient(addr)
	defer pub.Close()
	if err := pub.Register(f); err != nil {
		t.Fatal(err)
	}

	// The watcher sees it long before the hour-long TTL: the event purges
	// the negative entry and pre-inserts the LRU entry.
	waitFor(t, "event-driven invalidation", func() bool {
		_, _, err := watcher.ResolveFormat(fp)
		return err == nil
	})
	if reg.Counter("registry.watch_events").Load() == 0 {
		t.Error("watch_events = 0; resolution recovered some other way")
	}
	// And it resolved from the LRU — the event carried the entry payload,
	// so no extra daemon round-trip was needed.
	if got := reg.Counter("registry.misses").Load(); got != 0 {
		t.Errorf("misses = %d, want 0 (entry should arrive via the event)", got)
	}
}

// TestWatchPrewarmsFreshSubscriber: subscribing replays the daemon's current
// table, so a long-lived intermediary holds (and may suppress) formats it
// has never resolved or published.
func TestWatchPrewarmsFreshSubscriber(t *testing.T) {
	srv, addr := startDaemon(t)
	var fs []*pbio.Format
	for i := 0; i < 3; i++ {
		f := testFormat(t, fmt.Sprintf("warm%d", i), i)
		fs = append(fs, f)
		if err := srv.Put(f); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg))
	defer c.Close()
	if err := c.Watch(); err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		f := f
		waitFor(t, "pre-warmed entry "+f.Name(), func() bool { return c.Holds(f) })
	}
	if got := reg.Counter("registry.misses").Load(); got != 0 {
		t.Errorf("pre-warm cost %d cold fetches, want 0", got)
	}
}

// TestWatchReconnectSeqnoReplay kills the daemon mid-subscription, restarts
// a fresh instance on the same address, and registers a new format while
// the client is still down: the client's automatic resubscribe (jittered
// backoff, seqno replay — a full resync here, since the new instance cannot
// prove continuity) must deliver the registration. Zero invalidations lost.
func TestWatchReconnectSeqnoReplay(t *testing.T) {
	srv1, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go func() { _ = srv1.Serve(ln1) }()

	reg := obs.NewRegistry("test")
	watcher := NewClient(addr, WithClientObs(reg), WithNegTTL(time.Hour), WithBackoff(20*time.Millisecond))
	defer watcher.Close()
	if err := watcher.Watch(); err != nil {
		t.Fatal(err)
	}

	// Live subscription: an event arrives, advancing the client's seqno.
	pub1 := NewClient(addr)
	f1 := testFormat(t, "before", 0)
	if err := pub1.Register(f1); err != nil {
		t.Fatal(err)
	}
	_ = pub1.Close()
	waitFor(t, "pre-crash event", func() bool { return watcher.Holds(f1) })

	// Cache a negative resolution for the format that will appear later.
	f2 := testFormat(t, "after", 3)
	if _, _, err := watcher.ResolveFormat(f2.Fingerprint()); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}

	// Crash the daemon; bring up a fresh instance on the same address.
	_ = srv1.Close()
	srv2, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var ln2 net.Listener
	waitFor(t, "rebinding the daemon address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	go func() { _ = srv2.Serve(ln2) }()

	// Register the format on the new instance while the watcher is down.
	pub2 := NewClient(addr)
	defer pub2.Close()
	waitFor(t, "registering on the restarted daemon", func() bool {
		return pub2.Register(f2) == nil
	})

	// The watcher resubscribes on its own; the instance change forces a
	// full resync, which carries f2 — the cached miss clears without any
	// foreground RPC from the watcher.
	waitFor(t, "post-restart invalidation", func() bool {
		_, _, err := watcher.ResolveFormat(f2.Fingerprint())
		return err == nil
	})
	if reg.Counter("registry.watch_resubscribes").Load() == 0 {
		t.Error("watch_resubscribes = 0; the subscription never resumed")
	}
	// f1 must have survived too (it was already in the LRU).
	if !watcher.Holds(f1) {
		t.Error("pre-crash entry lost across the reconnect")
	}
}

// legacyDaemon is a minimal pre-watch (PR 4) registry daemon: it speaks
// opGet/opPut only and answers anything else with statusError via opGetResp,
// exactly like the shipped dispatch's default arm did before watch existed.
func startLegacyDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				var conn *wire.Conn
				conn = wire.NewConn(nc, wire.WithControlHook(wire.FrameRegistry, func(body []byte) error {
					op, reqID, _, err := parseHeader(body)
					if err != nil {
						return err
					}
					switch op {
					case opGet:
						return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opGetResp, reqID, statusUnknown, nil))
					case opPut:
						return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opPutResp, reqID, statusOK, nil))
					default:
						return conn.WriteControl(wire.FrameRegistry, appendResponse(nil, opGetResp, reqID, statusError, []byte("unknown op")))
					}
				}))
				defer conn.Close()
				for {
					if _, _, err := conn.ReadEncoded(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestWatchDegradesOnLegacyDaemon: against a daemon that predates the watch
// protocol, Watch reports ErrWatchUnsupported and ordinary RPCs keep
// working — the client silently stays on poll-on-miss.
func TestWatchDegradesOnLegacyDaemon(t *testing.T) {
	addr := startLegacyDaemon(t)
	c := NewClient(addr)
	defer c.Close()

	if err := c.Watch(); !errors.Is(err, ErrWatchUnsupported) {
		t.Fatalf("Watch = %v, want ErrWatchUnsupported", err)
	}
	f := testFormat(t, "legacy", 0)
	if err := c.Register(f); err != nil {
		t.Fatalf("Register against legacy daemon: %v", err)
	}
	if _, _, err := c.ResolveFormat(0xabcdef); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}
}

// TestConcurrentResolveRegisterWatch hammers one client from three sides at
// once — resolutions (hits, misses, negative hits), registrations, and the
// daemon's event stream — to give the race detector surface area over the
// cache, singleflight, and watch bookkeeping.
func TestConcurrentResolveRegisterWatch(t *testing.T) {
	srv, addr := startDaemon(t)
	c := NewClient(addr, WithNegTTL(10*time.Millisecond), WithCacheSize(16))
	defer c.Close()
	if err := c.Watch(); err != nil {
		t.Fatal(err)
	}

	var formats []*pbio.Format
	for i := 0; i < 24; i++ {
		formats = append(formats, testFormat(t, fmt.Sprintf("race%d", i), i%5))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Registrars: half through the client, half straight into the server
	// (which pushes events at the watching client).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := formats[r.Intn(len(formats))]
				if g == 0 {
					_ = c.Register(f)
				} else {
					_ = srv.Put(f)
				}
			}
		}(g)
	}
	// Resolvers: real fingerprints and ghosts, racing the event stream.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r.Intn(4) == 0 {
					_, _, _ = c.ResolveFormat(r.Uint64() | 1) // almost surely a ghost
				} else {
					_, _, _ = c.ResolveFormat(formats[r.Intn(len(formats))].Fingerprint())
				}
			}
		}(g)
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
}
