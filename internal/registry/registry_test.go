package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pbio"
)

func testFormat(t *testing.T, name string, extra int) *pbio.Format {
	t.Helper()
	fields := []pbio.Field{
		{Name: "id", Kind: pbio.Integer, Size: 4},
		{Name: "body", Kind: pbio.String},
	}
	for i := 0; i < extra; i++ {
		fields = append(fields, pbio.Field{Name: fmt.Sprintf("x%d", i), Kind: pbio.Integer, Size: 4})
	}
	f, err := pbio.NewFormat(name, fields)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// startDaemon runs a Server on a loopback listener, returning its address.
func startDaemon(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	s, err := NewServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() { _ = ln.Close() })
	return s, ln.Addr().String()
}

func TestEntryCodecRoundTrip(t *testing.T) {
	v2 := testFormat(t, "ev", 1)
	v1 := testFormat(t, "ev", 0)
	x := &core.Xform{From: v2, To: v1, Code: "old.id = new.id; old.body = new.body;"}
	e, err := decodeEntry(encodeEntry(v2, []*core.Xform{x}))
	if err != nil {
		t.Fatal(err)
	}
	if e.Format.Fingerprint() != v2.Fingerprint() {
		t.Fatalf("fingerprint mismatch: %016x != %016x", e.Format.Fingerprint(), v2.Fingerprint())
	}
	if len(e.Xforms) != 1 || e.Xforms[0].Code != x.Code {
		t.Fatalf("transforms not preserved: %+v", e.Xforms)
	}
	if _, err := decodeEntry([]byte{0xff, 0xff}); err == nil {
		t.Fatal("malformed entry decoded without error")
	}
}

func TestRegisterAndResolve(t *testing.T) {
	srv, addr := startDaemon(t)
	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg))
	defer c.Close()

	f := testFormat(t, "sensor", 2)
	x := &core.Xform{From: f, To: testFormat(t, "sensor", 0), Code: "old.id = new.id; old.body = new.body;"}
	if err := c.Register(f, x); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 1 {
		t.Fatalf("daemon table has %d entries, want 1", srv.Len())
	}
	if !c.Holds(f) {
		t.Fatal("Holds = false after acknowledged Register")
	}

	// Resolve through a second client: nothing shared but the daemon.
	c2 := NewClient(addr, WithClientObs(obs.NewRegistry("test2")))
	defer c2.Close()
	rf, xforms, err := c2.ResolveFormat(f.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if rf.Fingerprint() != f.Fingerprint() || len(xforms) != 1 {
		t.Fatalf("resolved %016x with %d transforms", rf.Fingerprint(), len(xforms))
	}

	// Second resolution must be an allocation-free cache hit.
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := c2.ResolveFormat(f.Fingerprint()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f times per call, want 0", allocs)
	}
}

func TestNegativeCacheAndSingleflight(t *testing.T) {
	srv, addr := startDaemon(t)
	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg), WithNegTTL(time.Hour))
	defer c.Close()

	const ghost = 0xdeadbeef
	if _, _, err := c.ResolveFormat(ghost); !errors.Is(err, ErrUnknownFingerprint) {
		t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
	}
	// Repeat hits the negative cache, not the daemon.
	gets := srv.gets.Load() + srv.unk.Load()
	for i := 0; i < 10; i++ {
		if _, _, err := c.ResolveFormat(ghost); !errors.Is(err, ErrUnknownFingerprint) {
			t.Fatalf("err = %v, want ErrUnknownFingerprint", err)
		}
	}
	if got := srv.gets.Load() + srv.unk.Load(); got != gets {
		t.Fatalf("negative lookups reached the daemon: %d → %d RPCs", gets, got)
	}
	if reg.Counter("registry.negative_hits").Load() != 10 {
		t.Fatalf("negative_hits = %d, want 10", reg.Counter("registry.negative_hits").Load())
	}

	// Singleflight: concurrent misses on a fresh fingerprint produce one fetch.
	f := testFormat(t, "burst", 1)
	if err := srv.Put(f); err != nil {
		t.Fatal(err)
	}
	misses0 := reg.Counter("registry.misses").Load()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.ResolveFormat(f.Fingerprint()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Followers share the leader's RPC; a straggler that misses the flight
	// window still hits the now-populated LRU. Either way the daemon sees
	// far fewer than 16 fetches — with full dedup exactly 1.
	if d := reg.Counter("registry.misses").Load() - misses0; d > 2 {
		t.Errorf("%d cold fetches for 16 concurrent misses, want ≲1", d)
	}
}

func TestClientDownAndRecovery(t *testing.T) {
	// No daemon at this address at all.
	c := NewClient("127.0.0.1:1", WithTimeout(200*time.Millisecond), WithBackoff(50*time.Millisecond))
	defer c.Close()

	f := testFormat(t, "orphan", 0)
	if err := c.Register(f); err == nil {
		t.Fatal("Register against nothing succeeded")
	}
	if !c.Down() {
		t.Fatal("client not down after dial failure")
	}
	if c.Holds(f) {
		t.Fatal("Holds = true while down")
	}
	// While down, RPCs fail fast with ErrDown rather than redialing.
	if _, _, err := c.ResolveFormat(42); !errors.Is(err, ErrDown) {
		t.Fatalf("err = %v, want ErrDown", err)
	}

	// Recovery: a daemon appears and the backoff expires.
	srv, addr := startDaemon(t)
	c2 := NewClient(addr, WithBackoff(10*time.Millisecond))
	defer c2.Close()
	if err := c2.Register(f); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 1 {
		t.Fatal("entry did not reach the daemon")
	}
}

func TestLRUEviction(t *testing.T) {
	srv, addr := startDaemon(t)
	reg := obs.NewRegistry("test")
	c := NewClient(addr, WithClientObs(reg), WithCacheSize(2))
	defer c.Close()

	var fps []uint64
	for i := 0; i < 3; i++ {
		f := testFormat(t, fmt.Sprintf("f%d", i), i)
		if err := srv.Put(f); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, f.Fingerprint())
		if _, _, err := c.ResolveFormat(f.Fingerprint()); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2: resolving f0 again must be a miss (evicted), f2 a hit.
	misses0 := reg.Counter("registry.misses").Load()
	if _, _, err := c.ResolveFormat(fps[0]); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("registry.misses").Load() != misses0+1 {
		t.Fatal("evicted entry did not refetch")
	}
	hits0 := reg.Counter("registry.hits").Load()
	if _, _, err := c.ResolveFormat(fps[2]); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("registry.hits").Load() != hits0+1 {
		t.Fatal("recent entry was not a cache hit")
	}
}

func TestSnapshotPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.spool")
	s1, err := NewServer(WithSnapshotPath(path))
	if err != nil {
		t.Fatal(err)
	}
	f := testFormat(t, "durable", 1)
	x := &core.Xform{From: f, To: testFormat(t, "durable", 0), Code: "old.id = new.id; old.body = new.body;"}
	if err := s1.Put(f, x); err != nil {
		t.Fatal(err)
	}

	// A new server over the same path restarts with the table intact.
	s2, err := NewServer(WithSnapshotPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("restarted table has %d entries, want 1", s2.Len())
	}
	e, err := s2.Resolve(f.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if e.Format.Fingerprint() != f.Fingerprint() || len(e.Xforms) != 1 {
		t.Fatal("snapshot did not preserve the entry")
	}
}

func TestRegistryzHandler(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testFormat(t, "zz", 0)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + RegistryzPath)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap registryzSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count != 1 || len(snap.Entries) != 1 || snap.Entries[0].Format != "zz" {
		t.Fatalf("registryz = %+v", snap)
	}
	if snap.WatchSeq != 1 {
		t.Fatalf("watch_seq = %d, want 1 (one Put = one event)", snap.WatchSeq)
	}
	if len(snap.Watchers) != 0 {
		t.Fatalf("watchers = %+v, want none", snap.Watchers)
	}
}

// TestRegistryzWatchers: live subscriptions show up in the debug snapshot
// with their delivery progress.
func TestRegistryzWatchers(t *testing.T) {
	s, addr := startDaemon(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(addr)
	defer c.Close()
	if err := c.Watch(); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(testFormat(t, "watched", 0)); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "watcher visible in registryz", func() bool {
		res, err := ts.Client().Get(ts.URL + RegistryzPath)
		if err != nil {
			return false
		}
		defer res.Body.Close()
		var snap registryzSnapshot
		if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
			return false
		}
		return len(snap.Watchers) == 1 && snap.Watchers[0].SentSeq >= 1 &&
			snap.Watchers[0].Remote != "" && snap.WatchSeq >= 1
	})
}
