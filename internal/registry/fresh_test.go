package registry

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestResolveFormatFreshBypassesStaleCache is the regression test for the
// stale-LRU half of the fingerprint-reuse bug: fingerprints are structural,
// so a later protocol generation can reuse one, and its re-registration then
// replaces the daemon entry's transform set while resolvers keep serving
// their cached copy (the watch event that would refresh it can lose the race
// to — or, as here, not exist for — the data frame that needs it).
// ResolveFormatFresh must return the daemon's current entry and leave the
// LRU refreshed with it.
func TestResolveFormatFreshBypassesStaleCache(t *testing.T) {
	_, addr := startDaemon(t)
	pub := NewClient(addr)
	defer pub.Close()
	// No watch stream: the subscriber's cache goes stale the way a live one
	// does when the event loses the race, just deterministically.
	sub := NewClient(addr, WithClientObs(obs.NewRegistry("sub")), WithWatchDisabled())
	defer sub.Close()

	wide := testFormat(t, "ev", 2)
	v0 := testFormat(t, "ev", 0)
	v1 := testFormat(t, "ev", 1)
	x0 := &core.Xform{From: wide, To: v0, Code: "old.id = new.id; old.body = new.body;"}
	x1 := &core.Xform{From: wide, To: v1, Code: "old.id = new.id; old.body = new.body; old.x0 = new.x0;"}

	if err := pub.Register(wide, x0); err != nil {
		t.Fatal(err)
	}
	if _, xs, err := sub.ResolveFormat(wide.Fingerprint()); err != nil || len(xs) != 1 {
		t.Fatalf("warm-up resolve: %d transforms, err %v; want 1, nil", len(xs), err)
	}

	// The "new generation" re-registers the same fingerprint with a richer
	// transform set: last write wins at the daemon.
	if err := pub.Register(wide, x0, x1); err != nil {
		t.Fatal(err)
	}

	// The cached read is honestly stale — that staleness is what makes the
	// fresh path load-bearing rather than redundant.
	if _, xs, err := sub.ResolveFormat(wide.Fingerprint()); err != nil || len(xs) != 1 {
		t.Fatalf("cached resolve after re-register: %d transforms, err %v; want the stale 1", len(xs), err)
	}
	if xs := sub.TransformsForFresh(wide.Fingerprint()); len(xs) != 2 {
		t.Fatalf("TransformsForFresh returned %d transforms, want the daemon's current 2", len(xs))
	}
	// And the fresh read repaired the cache: warm resolves now see it too.
	if _, xs, err := sub.ResolveFormat(wide.Fingerprint()); err != nil || len(xs) != 2 {
		t.Fatalf("cached resolve after fresh read: %d transforms, err %v; want 2, nil", len(xs), err)
	}
}

// TestClusterResolveFreshUnionsReplicas: which replica answers first must not
// decide whether a route exists. Two deliberately divergent daemons stand in
// for a primary and a lagging standby; the fresh cluster read must union
// their transform sets instead of returning the preferred replica's alone.
func TestClusterResolveFreshUnionsReplicas(t *testing.T) {
	_, addr0 := startDaemon(t)
	_, addr1 := startDaemon(t)

	wide := testFormat(t, "ev", 2)
	v0 := testFormat(t, "ev", 0)
	v1 := testFormat(t, "ev", 1)
	x0 := &core.Xform{From: wide, To: v0, Code: "old.id = new.id; old.body = new.body;"}
	x1 := &core.Xform{From: wide, To: v1, Code: "old.id = new.id; old.body = new.body; old.x0 = new.x0;"}

	d0 := NewClient(addr0)
	defer d0.Close()
	if err := d0.Register(wide, x0); err != nil {
		t.Fatal(err)
	}
	d1 := NewClient(addr1)
	defer d1.Close()
	if err := d1.Register(wide, x1); err != nil {
		t.Fatal(err)
	}

	cc := NewClusterClient([]string{addr0, addr1}, 1, WithWatchDisabled())
	defer cc.Close()

	// The ordinary read is preferred-replica-first and sees only its answer.
	if _, xs, err := cc.ResolveFormat(wide.Fingerprint()); err != nil || len(xs) != 1 {
		t.Fatalf("cluster resolve: %d transforms, err %v; want the preferred replica's 1", len(xs), err)
	}
	_, xs, err := cc.ResolveFormatFresh(wide.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 2 {
		t.Fatalf("fresh cluster resolve returned %d transforms, want the 2-replica union of 2", len(xs))
	}
	tos := map[uint64]bool{}
	for _, x := range xs {
		tos[x.To.Fingerprint()] = true
	}
	if !tos[v0.Fingerprint()] || !tos[v1.Fingerprint()] {
		t.Fatalf("union lost a destination: has %v", tos)
	}
}

// TestOnEventFiresAndRemoves: watch-event subscribers see every applied
// mutation's fingerprint, and a removed subscription stays silent — the
// contract echo subscribers rely on to invalidate morph decisions without
// leaking callbacks on a shared client.
func TestOnEventFiresAndRemoves(t *testing.T) {
	_, addr := startDaemon(t)
	c := NewClient(addr)
	defer c.Close()
	if err := c.Watch(); err != nil {
		t.Fatal(err)
	}
	got := make(chan uint64, 8)
	remove := c.OnEvent(func(fp uint64) { got <- fp })

	pub := NewClient(addr)
	defer pub.Close()
	f1 := testFormat(t, "hooked", 1)
	if err := pub.Register(f1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watch-event callback", func() bool {
		select {
		case fp := <-got:
			return fp == f1.Fingerprint()
		default:
			return false
		}
	})

	remove()
	f2 := testFormat(t, "hooked", 2)
	if err := pub.Register(f2); err != nil {
		t.Fatal(err)
	}
	// The event has been applied once Holds sees it; a still-registered
	// callback would have fired before that became observable.
	waitFor(t, "second event applied", func() bool { return c.Holds(f2) })
	select {
	case fp := <-got:
		t.Fatalf("removed callback fired with %016x", fp)
	default:
	}
}
