// Package registry is the reproduction of PBIO's third-party *format
// server* (PAPER §2): a shared service that stores format descriptions and
// their associated transformation meta-data keyed by the 8-byte fingerprint
// that rides every data frame. With a registry in reach, peers stop pushing
// format control frames in-band on every connection — the sender registers
// its formats once at startup, suppresses the per-connection announcements,
// and each receiver resolves a fingerprint it has never seen with one cached
// round-trip. Components "separated in space and/or time" (§1) can name each
// other's formats without ever sharing a live link.
//
// The subsystem is two halves over one protocol:
//
//   - Server (cmd/formatd): an in-memory fingerprint → entry table served
//     over the existing wire framing — registry RPCs ride a dedicated
//     control-frame kind (wire.FrameRegistry), so the daemon speaks the same
//     transport as every other component. /debug/registryz exposes the
//     table; an optional spool snapshot makes restarts lossless.
//
//   - Client: an LRU-cached, singleflight-deduplicated resolver implementing
//     wire.FormatResolver (read side), the wire.WithFormatSuppressor
//     predicate (send side), and core.TransformSource (morph side).
//
// Degradation is the design center, not an afterthought: every client
// failure path (daemon down, timeout, unknown fingerprint) reports cleanly,
// flips the client into a backed-off "down" state in which the suppressor
// stops suppressing, and the wire layer's re-announcement protocol
// (frameFormatReq) recovers any message already in flight — a dead registry
// degrades to exactly the in-band exchange the system used before it
// existed.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pbio"
)

// RPC protocol, carried in wire.FrameRegistry control frames:
//
//	request:  op(1) | uvarint reqID | payload
//	response: op(1) | uvarint reqID | status(1) | payload
//	event:    op(1) | uvarint seq   | fp(8, LE) | entry blob
//
// opGet's payload is an 8-byte little-endian fingerprint; opPut's payload
// and opGetResp's statusOK payload are an entry blob (encodeEntry). Unknown
// ops in requests are answered with statusError so old daemons stay
// interrogable by newer clients.
//
// The watch/invalidation stream rides the same frame kind. opHello's
// statusOK response carries capability(1) | instance(8, LE) | uvarint seq —
// a capability bitmask (capWatch), the daemon's random instance ID (so a
// client can tell a restarted daemon from a reconnect and discard its seqno
// bookkeeping), and the daemon's current event seqno. opWatch's payload is
// uvarint afterSeq, the last event seqno the client has applied (0 = none);
// the statusOK response echoes the daemon's current seqno, and from then on
// the daemon pushes one opEvent per table mutation with seq > afterSeq —
// replayed from a bounded ring, or as a full-table resync when the ring no
// longer reaches back far enough (or the client's seqno belongs to another
// instance). opEvent reuses the reqID varint slot as the event seqno and is
// never answered. opUnwatch cancels the subscription.
const (
	opGet         byte = 1 // resolve fingerprint → entry
	opPut         byte = 2 // publish entry
	opGetResp     byte = 3
	opPutResp     byte = 4
	opHello       byte = 5 // capability/instance/seqno probe
	opHelloResp   byte = 6
	opWatch       byte = 7 // subscribe to table mutations after a seqno
	opWatchResp   byte = 8
	opEvent       byte = 9 // daemon push: one new/changed entry
	opUnwatch     byte = 10
	opUnwatchResp byte = 11
)

// Capability bits advertised in the opHello response.
const (
	capWatch byte = 1 << 0 // daemon supports opWatch/opEvent/opUnwatch
)

// Cluster roles, advertised in the opHello response extension (and surfaced
// by internal/cluster). A pre-cluster daemon sends no extension at all and
// parses as RoleNone; peers treat RoleNone like a single standalone daemon.
const (
	RoleNone    byte = 0 // standalone daemon, or extension absent
	RolePrimary byte = 1 // accepts writes, sources the replication stream
	RoleStandby byte = 2 // replicates from the primary, forwards writes
)

// RoleName renders a role byte for logs and debug documents.
func RoleName(role byte) string {
	switch role {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	default:
		return "single"
	}
}

// Response status codes.
const (
	statusOK      byte = 0
	statusUnknown byte = 1 // fingerprint not in the table
	statusError   byte = 2 // payload: error text
	statusRetry   byte = 3 // transient: retry this write (here or on another replica)
)

// Registry errors.
var (
	// ErrUnknownFingerprint is returned by Resolve for fingerprints the
	// daemon does not hold (including negative-cache hits).
	ErrUnknownFingerprint = errors.New("registry: unknown fingerprint")

	// ErrDown is returned while the client is in its backed-off down state:
	// the daemon was unreachable recently and the backoff has not expired.
	ErrDown = errors.New("registry: down")

	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("registry: client closed")

	// ErrWatchUnsupported is returned by Watch when the daemon predates the
	// watch protocol (its hello does not advertise capWatch, or it answers
	// opHello with an error as pre-watch daemons do). The client then stays
	// on poll-on-miss resolution — the PR 4 behavior — without retrying.
	ErrWatchUnsupported = errors.New("registry: daemon does not support watch")

	// ErrRetryable is returned by Register when the daemon refused the write
	// for a transient cluster reason — it is a standby whose forward path to
	// the primary is down, or an election is still in flight — and the write
	// was NOT applied anywhere. Retrying (the same replica after a beat, or
	// another one: the cluster client's rotation does exactly this) is the
	// correct response.
	ErrRetryable = errors.New("registry: write not accepted (retry)")

	// errBadEntry wraps malformed entry blobs.
	errBadEntry = errors.New("registry: malformed entry")
)

// Entry is one registry record: a format description plus the transforms
// declared with it (transforms whose chains lead *from* this format, exactly
// what a format control frame would have carried in-band).
type Entry struct {
	Format *pbio.Format
	Xforms []*core.Xform
}

// encodeEntry serializes an entry with the same layout as a format control
// frame body — uvarint-framed format blob, transform count, uvarint-framed
// transform blobs — so the two representations stay trivially convertible.
func encodeEntry(f *pbio.Format, xforms []*core.Xform) []byte {
	blob := pbio.EncodeFormat(f)
	out := binary.AppendUvarint(nil, uint64(len(blob)))
	out = append(out, blob...)
	out = binary.AppendUvarint(out, uint64(len(xforms)))
	for _, x := range xforms {
		xb := core.EncodeXform(x)
		out = binary.AppendUvarint(out, uint64(len(xb)))
		out = append(out, xb...)
	}
	return out
}

// decodeEntry parses an entry blob.
func decodeEntry(body []byte) (Entry, error) {
	rest := body
	next := func() ([]byte, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return nil, fmt.Errorf("%w: chunk framing", errBadEntry)
		}
		chunk := rest[used : used+int(n)]
		rest = rest[used+int(n):]
		return chunk, nil
	}
	blob, err := next()
	if err != nil {
		return Entry{}, err
	}
	f, err := pbio.DecodeFormat(blob)
	if err != nil {
		return Entry{}, fmt.Errorf("%w: format: %v", errBadEntry, err)
	}
	nx, used := binary.Uvarint(rest)
	if used <= 0 {
		return Entry{}, fmt.Errorf("%w: transform count", errBadEntry)
	}
	rest = rest[used:]
	e := Entry{Format: f}
	for i := uint64(0); i < nx; i++ {
		xb, err := next()
		if err != nil {
			return Entry{}, err
		}
		x, err := core.DecodeXform(xb)
		if err != nil {
			return Entry{}, fmt.Errorf("%w: transform %d: %v", errBadEntry, i, err)
		}
		e.Xforms = append(e.Xforms, x)
	}
	if len(rest) != 0 {
		return Entry{}, fmt.Errorf("%w: %d trailing bytes", errBadEntry, len(rest))
	}
	return e, nil
}

// appendRequest frames one RPC request body.
func appendRequest(dst []byte, op byte, reqID uint64, payload []byte) []byte {
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, reqID)
	return append(dst, payload...)
}

// appendResponse frames one RPC response body.
func appendResponse(dst []byte, op byte, reqID uint64, status byte, payload []byte) []byte {
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, reqID)
	dst = append(dst, status)
	return append(dst, payload...)
}

// appendEvent frames one watch-event push: the reqID varint slot carries the
// event seqno, the payload is the fingerprint plus the entry blob.
func appendEvent(dst []byte, seq, fp uint64, blob []byte) []byte {
	dst = append(dst, opEvent)
	dst = binary.AppendUvarint(dst, seq)
	var key [8]byte
	binary.LittleEndian.PutUint64(key[:], fp)
	dst = append(dst, key[:]...)
	return append(dst, blob...)
}

// parseEvent splits an opEvent payload (everything after the seqno varint)
// into fingerprint and entry blob.
func parseEvent(rest []byte) (fp uint64, blob []byte, err error) {
	if len(rest) < 8 {
		return 0, nil, fmt.Errorf("registry: short watch event (%d bytes)", len(rest))
	}
	return binary.LittleEndian.Uint64(rest[:8]), rest[8:], nil
}

// appendHello frames the opHello statusOK response payload: capability
// bitmask, daemon instance ID, current event seqno.
func appendHello(dst []byte, caps byte, instance, seq uint64) []byte {
	dst = append(dst, caps)
	var inst [8]byte
	binary.LittleEndian.PutUint64(inst[:], instance)
	dst = append(dst, inst[:]...)
	return binary.AppendUvarint(dst, seq)
}

// appendHelloExt frames the full cluster-aware hello payload: the base
// layout (caps, instance, seq — everything parseHello reads) followed by the
// cluster extension role(1) | uvarint peer index | uvarint shard count.
// parseHello stops after the seqno varint, so pre-cluster clients ignore the
// extension; parseHelloInfo reads it when present.
func appendHelloExt(dst []byte, caps byte, instance, seq uint64, role byte, index, shards int) []byte {
	dst = appendHello(dst, caps, instance, seq)
	dst = append(dst, role)
	dst = binary.AppendUvarint(dst, uint64(index))
	return binary.AppendUvarint(dst, uint64(shards))
}

// HelloInfo is a fully parsed opHello response: the watch handshake fields
// plus the cluster extension (zero values against a pre-cluster daemon).
type HelloInfo struct {
	Caps     byte
	Instance uint64
	Seq      uint64
	Role     byte // RoleNone when the daemon sent no extension
	Index    int  // the daemon's index in its -peers list
	Shards   int  // the cluster's fingerprint-space shard count
}

// parseHelloInfo decodes an opHello statusOK response payload including the
// cluster extension. A missing or truncated extension is not an error — the
// daemon predates cluster mode and the extension fields stay zero.
func parseHelloInfo(b []byte) (HelloInfo, error) {
	var hi HelloInfo
	if len(b) < 9 {
		return hi, fmt.Errorf("registry: short hello response (%d bytes)", len(b))
	}
	hi.Caps = b[0]
	hi.Instance = binary.LittleEndian.Uint64(b[1:9])
	seq, used := binary.Uvarint(b[9:])
	if used <= 0 {
		return hi, errors.New("registry: bad hello seqno")
	}
	hi.Seq = seq
	rest := b[9+used:]
	if len(rest) == 0 {
		return hi, nil
	}
	hi.Role = rest[0]
	idx, u := binary.Uvarint(rest[1:])
	if u <= 0 {
		return hi, nil
	}
	hi.Index = int(idx)
	if sh, u2 := binary.Uvarint(rest[1+u:]); u2 > 0 {
		hi.Shards = int(sh)
	}
	return hi, nil
}

// ShardOf maps a fingerprint into the cluster's shard space. Fingerprints
// are already content hashes, but a cheap avalanche (murmur3 finalizer)
// guards against formats whose low bits correlate. Shard count <= 1 (or a
// non-positive value) collapses to shard 0 — single-shard routing.
func ShardOf(fp uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := fp
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(shards))
}

// parseHello decodes an opHello statusOK response payload.
func parseHello(b []byte) (caps byte, instance, seq uint64, err error) {
	if len(b) < 9 {
		return 0, 0, 0, fmt.Errorf("registry: short hello response (%d bytes)", len(b))
	}
	caps = b[0]
	instance = binary.LittleEndian.Uint64(b[1:9])
	seq, used := binary.Uvarint(b[9:])
	if used <= 0 {
		return 0, 0, 0, errors.New("registry: bad hello seqno")
	}
	return caps, instance, seq, nil
}

// parseHeader splits op and reqID off an RPC frame body, returning the rest.
func parseHeader(body []byte) (op byte, reqID uint64, rest []byte, err error) {
	if len(body) < 2 {
		return 0, 0, nil, fmt.Errorf("registry: short RPC frame (%d bytes)", len(body))
	}
	op = body[0]
	id, used := binary.Uvarint(body[1:])
	if used <= 0 {
		return 0, 0, nil, errors.New("registry: bad RPC request id")
	}
	return op, id, body[1+used:], nil
}
