// Package registry is the reproduction of PBIO's third-party *format
// server* (PAPER §2): a shared service that stores format descriptions and
// their associated transformation meta-data keyed by the 8-byte fingerprint
// that rides every data frame. With a registry in reach, peers stop pushing
// format control frames in-band on every connection — the sender registers
// its formats once at startup, suppresses the per-connection announcements,
// and each receiver resolves a fingerprint it has never seen with one cached
// round-trip. Components "separated in space and/or time" (§1) can name each
// other's formats without ever sharing a live link.
//
// The subsystem is two halves over one protocol:
//
//   - Server (cmd/formatd): an in-memory fingerprint → entry table served
//     over the existing wire framing — registry RPCs ride a dedicated
//     control-frame kind (wire.FrameRegistry), so the daemon speaks the same
//     transport as every other component. /debug/registryz exposes the
//     table; an optional spool snapshot makes restarts lossless.
//
//   - Client: an LRU-cached, singleflight-deduplicated resolver implementing
//     wire.FormatResolver (read side), the wire.WithFormatSuppressor
//     predicate (send side), and core.TransformSource (morph side).
//
// Degradation is the design center, not an afterthought: every client
// failure path (daemon down, timeout, unknown fingerprint) reports cleanly,
// flips the client into a backed-off "down" state in which the suppressor
// stops suppressing, and the wire layer's re-announcement protocol
// (frameFormatReq) recovers any message already in flight — a dead registry
// degrades to exactly the in-band exchange the system used before it
// existed.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pbio"
)

// RPC protocol, carried in wire.FrameRegistry control frames:
//
//	request:  op(1) | uvarint reqID | payload
//	response: op(1) | uvarint reqID | status(1) | payload
//
// opGet's payload is an 8-byte little-endian fingerprint; opPut's payload
// and opGetResp's statusOK payload are an entry blob (encodeEntry). Unknown
// ops in requests are answered with statusError so old daemons stay
// interrogable by newer clients.
const (
	opGet     byte = 1 // resolve fingerprint → entry
	opPut     byte = 2 // publish entry
	opGetResp byte = 3
	opPutResp byte = 4
)

// Response status codes.
const (
	statusOK      byte = 0
	statusUnknown byte = 1 // fingerprint not in the table
	statusError   byte = 2 // payload: error text
)

// Registry errors.
var (
	// ErrUnknownFingerprint is returned by Resolve for fingerprints the
	// daemon does not hold (including negative-cache hits).
	ErrUnknownFingerprint = errors.New("registry: unknown fingerprint")

	// ErrDown is returned while the client is in its backed-off down state:
	// the daemon was unreachable recently and the backoff has not expired.
	ErrDown = errors.New("registry: down")

	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("registry: client closed")

	// errBadEntry wraps malformed entry blobs.
	errBadEntry = errors.New("registry: malformed entry")
)

// Entry is one registry record: a format description plus the transforms
// declared with it (transforms whose chains lead *from* this format, exactly
// what a format control frame would have carried in-band).
type Entry struct {
	Format *pbio.Format
	Xforms []*core.Xform
}

// encodeEntry serializes an entry with the same layout as a format control
// frame body — uvarint-framed format blob, transform count, uvarint-framed
// transform blobs — so the two representations stay trivially convertible.
func encodeEntry(f *pbio.Format, xforms []*core.Xform) []byte {
	blob := pbio.EncodeFormat(f)
	out := binary.AppendUvarint(nil, uint64(len(blob)))
	out = append(out, blob...)
	out = binary.AppendUvarint(out, uint64(len(xforms)))
	for _, x := range xforms {
		xb := core.EncodeXform(x)
		out = binary.AppendUvarint(out, uint64(len(xb)))
		out = append(out, xb...)
	}
	return out
}

// decodeEntry parses an entry blob.
func decodeEntry(body []byte) (Entry, error) {
	rest := body
	next := func() ([]byte, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return nil, fmt.Errorf("%w: chunk framing", errBadEntry)
		}
		chunk := rest[used : used+int(n)]
		rest = rest[used+int(n):]
		return chunk, nil
	}
	blob, err := next()
	if err != nil {
		return Entry{}, err
	}
	f, err := pbio.DecodeFormat(blob)
	if err != nil {
		return Entry{}, fmt.Errorf("%w: format: %v", errBadEntry, err)
	}
	nx, used := binary.Uvarint(rest)
	if used <= 0 {
		return Entry{}, fmt.Errorf("%w: transform count", errBadEntry)
	}
	rest = rest[used:]
	e := Entry{Format: f}
	for i := uint64(0); i < nx; i++ {
		xb, err := next()
		if err != nil {
			return Entry{}, err
		}
		x, err := core.DecodeXform(xb)
		if err != nil {
			return Entry{}, fmt.Errorf("%w: transform %d: %v", errBadEntry, i, err)
		}
		e.Xforms = append(e.Xforms, x)
	}
	if len(rest) != 0 {
		return Entry{}, fmt.Errorf("%w: %d trailing bytes", errBadEntry, len(rest))
	}
	return e, nil
}

// appendRequest frames one RPC request body.
func appendRequest(dst []byte, op byte, reqID uint64, payload []byte) []byte {
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, reqID)
	return append(dst, payload...)
}

// appendResponse frames one RPC response body.
func appendResponse(dst []byte, op byte, reqID uint64, status byte, payload []byte) []byte {
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, reqID)
	dst = append(dst, status)
	return append(dst, payload...)
}

// parseHeader splits op and reqID off an RPC frame body, returning the rest.
func parseHeader(body []byte) (op byte, reqID uint64, rest []byte, err error) {
	if len(body) < 2 {
		return 0, 0, nil, fmt.Errorf("registry: short RPC frame (%d bytes)", len(body))
	}
	op = body[0]
	id, used := binary.Uvarint(body[1:])
	if used <= 0 {
		return 0, 0, nil, errors.New("registry: bad RPC request id")
	}
	return op, id, body[1+used:], nil
}
