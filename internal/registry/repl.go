package registry

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// ReplSession is a raw peer-to-peer registry connection: the client a
// cluster standby (internal/cluster) keeps open to its primary. It speaks
// the same FrameRegistry RPC protocol as Client but with none of the cache,
// backoff, or singleflight machinery — a standby wants the unfiltered event
// stream (every mutation, delivered in order, with its seqno) and explicit
// control over hello/watch timing, because the seqno bookkeeping *is* the
// replication state.
//
// Events are delivered on the session's read pump via the onEvent callback
// given to DialRepl; the blob is a private copy, safe to retain. RPCs
// (Hello, Watch, Put) are safe for concurrent use. When the connection dies
// the Done channel closes and every outstanding RPC fails.
type ReplSession struct {
	conn    *wire.Conn
	onEvent func(seq, fp uint64, blob []byte)

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan rpcResp
	dead    bool

	done     chan struct{}
	doneOnce sync.Once
}

// DialRepl connects to the registry daemon at addr. onEvent (may be nil)
// receives every opEvent push; it runs on the read pump, so a slow callback
// backpressures the stream rather than dropping events.
func DialRepl(addr string, timeout time.Duration, onEvent func(seq, fp uint64, blob []byte)) (*ReplSession, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("registry: repl dial %s: %w", addr, err)
	}
	r := &ReplSession{
		onEvent: onEvent,
		pending: make(map[uint64]chan rpcResp),
		done:    make(chan struct{}),
	}
	r.conn = wire.NewConn(nc, wire.WithControlHook(wire.FrameRegistry, func(body []byte) error {
		r.onFrame(body)
		return nil
	}))
	go r.pump()
	return r, nil
}

// ProbeHello dials addr, performs one hello round-trip, and closes the
// connection: the cluster's election and heartbeat primitive.
func ProbeHello(addr string, timeout time.Duration) (HelloInfo, error) {
	r, err := DialRepl(addr, timeout, nil)
	if err != nil {
		return HelloInfo{}, err
	}
	defer r.Close()
	return r.Hello(timeout)
}

// Hello performs one capability/instance/seqno probe, returning the parsed
// response including the cluster extension.
func (r *ReplSession) Hello(timeout time.Duration) (HelloInfo, error) {
	resp, err := r.rpc(opHello, nil, timeout)
	if err != nil {
		return HelloInfo{}, err
	}
	if resp.status != statusOK {
		return HelloInfo{}, fmt.Errorf("registry: repl hello rejected: %s", resp.payload)
	}
	return parseHelloInfo(resp.payload)
}

// Watch subscribes to the mutation stream after the given seqno (0 = full
// resync) and returns the daemon's current seqno. Events then flow to the
// onEvent callback until the connection dies.
func (r *ReplSession) Watch(afterSeq uint64, timeout time.Duration) (uint64, error) {
	resp, err := r.rpc(opWatch, binary.AppendUvarint(nil, afterSeq), timeout)
	if err != nil {
		return 0, err
	}
	if resp.status != statusOK {
		return 0, fmt.Errorf("registry: repl watch rejected: %s", resp.payload)
	}
	seq, used := binary.Uvarint(resp.payload)
	if used <= 0 {
		return 0, fmt.Errorf("registry: repl watch: bad seqno echo")
	}
	return seq, nil
}

// Put publishes one already-encoded entry blob — the standby's write-forward
// primitive (the blob arrived encoded from the standby's own client; there
// is nothing to re-encode).
func (r *ReplSession) Put(blob []byte, timeout time.Duration) error {
	resp, err := r.rpc(opPut, blob, timeout)
	if err != nil {
		return err
	}
	if resp.status != statusOK {
		return fmt.Errorf("registry: repl put rejected: %s", resp.payload)
	}
	return nil
}

// Done closes when the connection has died (peer reset, Close, protocol
// violation). The supervisor selects on it to trigger failover handling.
func (r *ReplSession) Done() <-chan struct{} { return r.done }

// Close tears the session down; outstanding RPCs fail, Done closes.
func (r *ReplSession) Close() error { return r.conn.Close() }

func (r *ReplSession) rpc(op byte, payload []byte, timeout time.Duration) (rpcResp, error) {
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		return rpcResp{}, fmt.Errorf("registry: repl session closed")
	}
	r.nextID++
	id := r.nextID
	ch := make(chan rpcResp, 1)
	r.pending[id] = ch
	r.mu.Unlock()

	if err := r.conn.WriteControl(wire.FrameRegistry, appendRequest(nil, op, id, payload)); err != nil {
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return rpcResp{}, fmt.Errorf("registry: repl write: %w", err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.err != nil {
			return rpcResp{}, resp.err
		}
		return resp, nil
	case <-timer.C:
		r.mu.Lock()
		delete(r.pending, id)
		r.mu.Unlock()
		return rpcResp{}, fmt.Errorf("registry: repl rpc timeout after %s", timeout)
	case <-r.done:
		return rpcResp{}, fmt.Errorf("registry: repl connection lost")
	}
}

// pump drives the read loop until the connection dies, then fails every
// outstanding RPC and closes Done.
func (r *ReplSession) pump() {
	for {
		if _, _, err := r.conn.ReadEncoded(); err != nil {
			break
		}
	}
	_ = r.conn.Close()
	r.mu.Lock()
	r.dead = true
	for id, ch := range r.pending {
		delete(r.pending, id)
		ch <- rpcResp{err: fmt.Errorf("registry: repl connection lost")}
	}
	r.mu.Unlock()
	r.doneOnce.Do(func() { close(r.done) })
}

// onFrame dispatches one response or event frame from the pump.
func (r *ReplSession) onFrame(body []byte) {
	op, reqID, rest, err := parseHeader(body)
	if err != nil {
		return
	}
	if op == opEvent {
		if r.onEvent == nil {
			return
		}
		fp, blob, perr := parseEvent(rest)
		if perr != nil {
			return
		}
		// Copy: the frame body aliases the pump conn's pooled read buffer,
		// and the standby retains the blob in its table.
		r.onEvent(reqID, fp, append([]byte(nil), blob...))
		return
	}
	switch op {
	case opGetResp, opPutResp, opHelloResp, opWatchResp, opUnwatchResp:
	default:
		return
	}
	if len(rest) < 1 {
		return
	}
	resp := rpcResp{status: rest[0], payload: append([]byte(nil), rest[1:]...)}
	r.mu.Lock()
	ch := r.pending[reqID]
	delete(r.pending, reqID)
	r.mu.Unlock()
	if ch != nil {
		ch <- resp
	}
}
