package registry

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// These three tests are the minimized regressions for the bugs the fleet
// chaos soak (morphbench -exp fleet) flushed out. Each one reproduces, in a
// few milliseconds and without any process churn, the exact mechanism that
// took multi-minute soak runs and a debugger to isolate.

// TestResolveFormatFreshBypassesDownGate: after a transport failure the
// client marks its daemon down and fails fast for a backoff window. In the
// soak, the replica inside that window was the just-restarted (and freshly
// promoted) daemon holding the only current copy of a collided fingerprint's
// transform set — honoring the gate on the fresh path made every fresh read
// miss it and morphers rejected live traffic. A fresh read exists precisely
// because cached knowledge is suspect, so it must bypass the down gate; a
// success doubles as proof of life and clears the down state.
func TestResolveFormatFreshBypassesDownGate(t *testing.T) {
	_, addr := startDaemon(t)
	c := NewClient(addr, WithWatchDisabled(), WithBackoff(time.Hour))
	defer c.Close()
	pub := NewClient(addr)
	defer pub.Close()

	wide := testFormat(t, "ev", 1)
	v0 := testFormat(t, "ev", 0)
	x := &core.Xform{From: wide, To: v0, Code: "old.id = new.id; old.body = new.body;"}
	if err := pub.Register(wide, x); err != nil {
		t.Fatal(err)
	}

	// What a dial failure would do, minus the dial failure: an hour of
	// fail-fast for every ordinary RPC.
	c.mu.Lock()
	c.markDownLocked()
	c.mu.Unlock()

	if _, _, err := c.ResolveFormat(wide.Fingerprint()); !errors.Is(err, ErrDown) {
		t.Fatalf("gated resolve returned %v, want ErrDown", err)
	}
	if _, xs, err := c.ResolveFormatFresh(wide.Fingerprint()); err != nil || len(xs) != 1 {
		t.Fatalf("fresh resolve under down gate: %d transforms, err %v; want 1, nil", len(xs), err)
	}
	// The successful forced RPC is a health probe in disguise: the gate is
	// lifted and ordinary reads work again immediately.
	if _, _, err := c.ResolveFormat(wide.Fingerprint()); err != nil {
		t.Fatalf("resolve after fresh success still gated: %v", err)
	}
}

// TestOnEventCallbackMayBlockWithoutStallingRPCs: event callbacks used to run
// on the watch connection's read pump, so a callback that blocked on a lock
// held by a caller waiting for an RPC response on that same connection was a
// deadlock — in the soak, a morpher's Invalidate (blocked on the decision
// lock) wedged the pump while the decision itself waited on a fresh opGet,
// and both sides timed out. Callbacks now run on a dispatcher goroutine: a
// blocked callback must not prevent a concurrent RPC on the same client from
// completing.
func TestOnEventCallbackMayBlockWithoutStallingRPCs(t *testing.T) {
	_, addr := startDaemon(t)
	c := NewClient(addr)
	defer c.Close()
	if err := c.Watch(); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	c.OnEvent(func(fp uint64) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	})

	pub := NewClient(addr)
	defer pub.Close()
	f := testFormat(t, "blocked", 1)
	if err := pub.Register(f); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("event callback never fired")
	}

	// The callback is parked mid-flight. A fresh resolve is a full RPC whose
	// response arrives on the pump the callback used to run on; with the old
	// synchronous dispatch this times out.
	if _, xs, err := c.ResolveFormatFresh(f.Fingerprint()); err != nil || len(xs) != 0 {
		t.Fatalf("RPC while callback blocked: %d transforms, err %v; want 0, nil", len(xs), err)
	}
}

// TestPutMergesStaleVintage: structural fingerprints collide across protocol
// generations, so clients legitimately hold different vintages of the same
// entry — in the soak, the broker's client was frozen at an early
// generation's 4-transform set (wire peers announce a format once) while the
// publisher's held the current 9. Reconvergence sweeps from both race on
// every failover, and with last-write-wins the stale sweep stomped the fresh
// entry at arbitrary times. The daemon must merge transform sets: a stale
// subset is a damped no-op (no event, no table change), a new destination is
// added, and a changed code for a known destination is replaced (newest
// wins).
func TestPutMergesStaleVintage(t *testing.T) {
	srv, addr := startDaemon(t)
	eventSeq := func() uint64 {
		srv.watchMu.Lock()
		defer srv.watchMu.Unlock()
		return srv.seq
	}

	fresh := NewClient(addr, WithWatchDisabled()) // stale-vintage publisher
	defer fresh.Close()
	pub := NewClient(addr, WithWatchDisabled())
	defer pub.Close()

	wide := testFormat(t, "ev", 2)
	v0 := testFormat(t, "ev", 0)
	v1 := testFormat(t, "ev", 1)
	x0 := &core.Xform{From: wide, To: v0, Code: "old.id = new.id; old.body = new.body;"}
	x1 := &core.Xform{From: wide, To: v1, Code: "old.id = new.id; old.body = new.body; old.x0 = new.x0;"}

	// Current generation registers the rich set; a stale vintage then
	// re-registers the subset it remembers.
	if err := pub.Register(wide, x0, x1); err != nil {
		t.Fatal(err)
	}
	seqAfterRich := eventSeq()
	if err := fresh.Register(wide, x0); err != nil {
		t.Fatal(err)
	}
	if xs := fresh.TransformsForFresh(wide.Fingerprint()); len(xs) != 2 {
		t.Fatalf("after stale re-register the daemon serves %d transforms, want the merged 2", len(xs))
	}
	// The subset put is also damped: no watch event means no invalidation
	// storm when reconvergence sweeps re-announce an entire published set.
	if got := eventSeq(); got != seqAfterRich {
		t.Fatalf("stale subset put advanced the event seq %d -> %d, want damped", seqAfterRich, got)
	}

	// Newest wins per destination: a changed code replaces, and does emit.
	x1b := &core.Xform{From: wide, To: v1, Code: "old.id = new.id; old.body = new.body; old.x0 = new.x0 * 2;"}
	if err := fresh.Register(wide, x1b); err != nil {
		t.Fatal(err)
	}
	if got := eventSeq(); got != seqAfterRich+1 {
		t.Fatalf("code-change put moved event seq %d -> %d, want exactly one new event", seqAfterRich, got)
	}
	xs := fresh.TransformsForFresh(wide.Fingerprint())
	if len(xs) != 2 {
		t.Fatalf("after code change: %d transforms, want 2", len(xs))
	}
	for _, x := range xs {
		if x.To.Fingerprint() == v1.Fingerprint() && x.Code != x1b.Code {
			t.Fatalf("destination v1 still serves the old code %q", x.Code)
		}
	}
}
