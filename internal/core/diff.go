package core

import "repro/internal/pbio"

// Diff implements the paper's Algorithm 1: the total number of basic-type
// fields that are present in f1 but not in f2. Field matching is by name;
// a basic field counts as present in f2 only if f2's same-named field is
// also basic and kind-compatible (numeric kinds are mutually compatible,
// strings only match strings — the same rule the converter uses, so Diff=0
// implies a lossless name-wise conversion exists).
//
// Complex fields recurse: a complex field with no same-named complex
// counterpart contributes its whole weight; otherwise the difference of the
// two sub-formats. List fields follow the same rule through their element
// type, counting the element schema once, consistent with Format.Weight.
func Diff(f1, f2 *pbio.Format) int {
	d := 0
	for i := 0; i < f1.NumFields(); i++ {
		d += fieldDiff(f1.Field(i), f2.FieldByName(f1.Field(i).Name))
	}
	return d
}

// fieldDiff returns the contribution of field a given its same-named
// counterpart b in the other format (b may be nil).
func fieldDiff(a, b *pbio.Field) int {
	switch a.Kind {
	case pbio.Complex:
		if b == nil || b.Kind != pbio.Complex {
			return weightOf(a)
		}
		return Diff(a.Sub, b.Sub)
	case pbio.List:
		if b == nil || b.Kind != pbio.List {
			return weightOf(a)
		}
		return elemDiff(a.Elem, b.Elem)
	default: // basic
		if b == nil || !b.Kind.IsBasic() || !basicCompatible(a.Kind, b.Kind) {
			return 1
		}
		return 0
	}
}

// elemDiff compares two list element descriptors.
func elemDiff(a, b *pbio.Field) int {
	switch a.Kind {
	case pbio.Complex:
		if b.Kind != pbio.Complex {
			return weightOf(a)
		}
		return Diff(a.Sub, b.Sub)
	case pbio.List:
		if b.Kind != pbio.List {
			return weightOf(a)
		}
		return elemDiff(a.Elem, b.Elem)
	default:
		if !b.Kind.IsBasic() || !basicCompatible(a.Kind, b.Kind) {
			return 1
		}
		return 0
	}
}

// basicCompatible reports whether a value of basic kind a converts
// losslessly-enough into basic kind b for name-wise morphing: any numeric
// kind into any numeric kind, string only into string.
func basicCompatible(a, b pbio.Kind) bool {
	if a == pbio.String || b == pbio.String {
		return a == b
	}
	return true
}

// weightOf is Format.Weight extended to a single field descriptor.
func weightOf(f *pbio.Field) int {
	switch f.Kind {
	case pbio.Complex:
		return f.Sub.Weight()
	case pbio.List:
		return weightOf(f.Elem)
	default:
		return 1
	}
}

// MismatchRatio is the paper's M_r(f1, f2): the fraction of f2's fields that
// f1 cannot supply, i.e. Diff(f2, f1) / Weight(f2). A weightless f2 (no
// basic fields anywhere) has ratio 0 by convention.
func MismatchRatio(f1, f2 *pbio.Format) float64 {
	w := f2.Weight()
	if w == 0 {
		return 0
	}
	return float64(Diff(f2, f1)) / float64(w)
}

// Perfect reports whether (f1, f2) is a perfect matching pair:
// Diff(f1, f2) = Diff(f2, f1) = 0.
func Perfect(f1, f2 *pbio.Format) bool {
	return Diff(f1, f2) == 0 && Diff(f2, f1) == 0
}
