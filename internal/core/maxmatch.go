package core

import "repro/internal/pbio"

// Thresholds bound how much mismatch MaxMatch will tolerate, the paper's
// DIFF_THRESHOLD and MISMATCH_THRESHOLD. They "add another dimension of
// flexibility by allowing control of the amount of mismatch that will be
// allowed in a particular system"; setting Diff to zero admits only perfect
// matches.
type Thresholds struct {
	// Diff is the maximum allowed Diff(f1, f2): basic fields of the incoming
	// format that the target cannot represent (they will be dropped).
	Diff int

	// Mismatch is the maximum allowed MismatchRatio(f1, f2): the fraction of
	// the target's fields the incoming format cannot supply (they will be
	// filled with defaults).
	Mismatch float64
}

// DefaultThresholds tolerates moderate evolution: up to 8 dropped fields and
// up to half of the target filled by defaults.
var DefaultThresholds = Thresholds{Diff: 8, Mismatch: 0.5}

// Match is a MaxMatch result pair: From ∈ F1 is the format the message will
// be brought into; To ∈ F2 is the reader-side format it will be delivered
// as.
type Match struct {
	From     *pbio.Format
	To       *pbio.Format
	Diff     int     // Diff(From, To): incoming fields that will be dropped
	Mismatch float64 // MismatchRatio(From, To): target fields defaulted
}

// IsPerfect reports whether the pair matched with no differences either way.
func (m Match) IsPerfect() bool { return m.Diff == 0 && m.Mismatch == 0 }

// MaxMatch returns the best matching format pair between F1 (the formats an
// incoming message can be transformed into, including its own) and F2 (the
// formats the reader understands), per the paper's conditions:
//
//	 (i) f1 ∈ F1,  (ii) f2 ∈ F2,
//	(iii) Diff(f1, f2) ≤ th.Diff,
//	 (iv) MismatchRatio(f1, f2) ≤ th.Mismatch,
//	 (v) among candidates, least M_r first, then least Diff; remaining ties
//	     are broken deterministically (by position in F1 then F2, so callers
//	     can bias the choice by ordering — e.g. putting the identity
//	     transformation first).
//
// ok is false if no pair satisfies the thresholds.
func MaxMatch(f1s, f2s []*pbio.Format, th Thresholds) (best Match, ok bool) {
	for _, f1 := range f1s {
		if f1 == nil {
			continue
		}
		for _, f2 := range f2s {
			if f2 == nil {
				continue
			}
			d := Diff(f1, f2)
			if d > th.Diff {
				continue
			}
			mr := MismatchRatio(f1, f2)
			if mr > th.Mismatch {
				continue
			}
			cand := Match{From: f1, To: f2, Diff: d, Mismatch: mr}
			if !ok || less(cand, best) {
				best, ok = cand, true
			}
		}
	}
	return best, ok
}

// less orders candidate matches per condition (v). Strict inequality keeps
// the earliest candidate on ties, making the scan order the deterministic
// tie-break.
func less(a, b Match) bool {
	if a.Mismatch != b.Mismatch {
		return a.Mismatch < b.Mismatch
	}
	return a.Diff < b.Diff
}
