package core

import (
	"sync"
	"testing"

	"repro/internal/pbio"
)

// TestAddTransformRefreshDoesNotMutateSharedXform is the regression test
// for a race the fleet chaos soak caught under -race: resolver caches hand
// the same *Xform pointers to every connection, and AddTransform's refresh
// path used to write the new code through the shared pointer — racing with
// (and silently rewriting) another morpher's concurrent compile of the same
// transform. A refresh must replace the morpher's own edge and leave the
// caller's Xform untouched.
func TestAddTransformRefreshDoesNotMutateSharedXform(t *testing.T) {
	wide := fmtOrDie(t, "ev", []pbio.Field{bf("a", pbio.Integer), bf("b", pbio.Integer)})
	narrow := fmtOrDie(t, "ev", []pbio.Field{bf("a", pbio.Integer)})
	shared := &Xform{From: wide, To: narrow, Code: "old.a = new.a;"}

	m1 := NewMorpher(Thresholds{})
	m2 := NewMorpher(Thresholds{})
	if err := m1.AddTransform(shared); err != nil {
		t.Fatal(err)
	}
	if err := m2.AddTransform(shared); err != nil {
		t.Fatal(err)
	}

	// m2 refreshes the edge with different code; the shared object m1 still
	// holds must not change underneath it.
	if err := m2.AddTransform(&Xform{From: wide, To: narrow, Code: "old.a = new.a + 1;"}); err != nil {
		t.Fatal(err)
	}
	if shared.Code != "old.a = new.a;" {
		t.Fatalf("refresh wrote through the shared Xform: %q", shared.Code)
	}

	// And the original race, minimized: one goroutine validates (compiles)
	// the shared transform while another refreshes the same edge. Run under
	// -race this fails with the old write-through refresh.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := shared.Validate(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		codes := [2]string{"old.a = new.a;", "old.a = new.a + 1;"}
		for i := 0; i < 200; i++ {
			if err := m1.AddTransform(&Xform{From: wide, To: narrow, Code: codes[i%2]}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
