package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pbio"
)

// figure5 is the paper's v2.0 → v1.0 ChannelOpenResponse transformation.
const figure5 = `
int i, sink_count = 0, src_count = 0;
old.member_count = new.member_count;
for (i = 0; i < new.member_count; i++) {
    old.member_list[i].info = new.member_list[i].info;
    old.member_list[i].ID = new.member_list[i].ID;
    if (new.member_list[i].is_Source) {
        old.src_count = src_count + 1;
        old.src_list[src_count].info = new.member_list[i].info;
        old.src_list[src_count].ID = new.member_list[i].ID;
        src_count++;
    }
    if (new.member_list[i].is_Sink) {
        old.sink_count = sink_count + 1;
        old.sink_list[sink_count].info = new.member_list[i].info;
        old.sink_list[sink_count].ID = new.member_list[i].ID;
        sink_count++;
    }
}
`

func v2Response(t *testing.T, v2 *pbio.Format, n int) *pbio.Record {
	t.Helper()
	member := v2.FieldByName("member_list").Elem.Sub
	elems := make([]pbio.Value, n)
	for i := range elems {
		rec := pbio.NewRecord(member).
			MustSet("info", pbio.Str(fmt.Sprintf("tcp:host%d:%d", i, 4000+i))).
			MustSet("ID", pbio.Int(7)).
			MustSet("is_Source", pbio.Bool(i%2 == 0)).
			MustSet("is_Sink", pbio.Bool(i%2 == 1))
		elems[i] = pbio.RecordOf(rec)
	}
	return pbio.NewRecord(v2).
		MustSet("member_count", pbio.Int(int64(n))).
		MustSet("member_list", pbio.ListOf(elems))
}

func TestMorpherExactDelivery(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	m := NewMorpher(DefaultThresholds)
	var got *pbio.Record
	if err := m.RegisterFormat(f, func(r *pbio.Record) error { got = r; return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(f).MustSet("x", pbio.Int(5))
	if err := m.Deliver(rec); err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Error("exact-format delivery must hand over the record unchanged")
	}
	st := m.Stats()
	if st.Delivered != 1 || st.Transformed != 0 || st.Converted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestMorpherEvolutionScenario is the paper's §4.1 scenario end to end: an
// old subscriber that only understands ChannelOpenResponse v1.0 receives a
// v2.0 message whose meta-data carries the Figure 5 transformation.
func TestMorpherEvolutionScenario(t *testing.T) {
	v1, v2 := echoV1V2(t)
	m := NewMorpher(DefaultThresholds)

	var delivered *pbio.Record
	if err := m.RegisterFormat(v1, func(r *pbio.Record) error { delivered = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v2, To: v1, Code: figure5}); err != nil {
		t.Fatal(err)
	}

	in := v2Response(t, v2, 4)
	if err := m.Deliver(in); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if delivered == nil {
		t.Fatal("handler not invoked")
	}
	if !delivered.Format().SameStructure(v1) {
		t.Fatalf("delivered format = %q, want v1 structure", delivered.Format().Name())
	}
	if v, _ := delivered.Get("member_count"); v.Int64() != 4 {
		t.Errorf("member_count = %d", v.Int64())
	}
	if v, _ := delivered.Get("src_count"); v.Int64() != 2 {
		t.Errorf("src_count = %d", v.Int64())
	}
	if v, _ := delivered.Get("sink_count"); v.Int64() != 2 {
		t.Errorf("sink_count = %d", v.Int64())
	}
	sl, _ := delivered.Get("src_list")
	if sl.Len() != 2 || sl.List()[0].Record().GetIndex(0).Strval() != "tcp:host0:4000" {
		t.Errorf("src_list = %v", sl)
	}

	st := m.Stats()
	if st.Compiled != 1 || st.Transformed != 1 {
		t.Errorf("stats = %+v, want exactly one compile and one transform", st)
	}
}

func TestMorpherDecisionCaching(t *testing.T) {
	v1, v2 := echoV1V2(t)
	m := NewMorpher(DefaultThresholds)
	count := 0
	if err := m.RegisterFormat(v1, func(*pbio.Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v2, To: v1, Code: figure5}); err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := m.Deliver(v2Response(t, v2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if count != n {
		t.Errorf("handler ran %d times, want %d", count, n)
	}
	if st.Compiled != 1 {
		t.Errorf("Compiled = %d, want 1 (code generated once, then cached)", st.Compiled)
	}
	if st.CacheHits != n-1 {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, n-1)
	}
	if st.Transformed != n {
		t.Errorf("Transformed = %d, want %d", st.Transformed, n)
	}
}

func TestMorpherRetroChain(t *testing.T) {
	// Figure 1: Rev 2.0 → Rev 1.0 → Rev 0.0 via chained retro-transforms.
	v0 := fmtOrDie(t, "Rev", []pbio.Field{bf("a", pbio.Integer)})
	v1 := fmtOrDie(t, "Rev", []pbio.Field{bf("a", pbio.Integer), bf("b", pbio.Integer)})
	v2 := fmtOrDie(t, "Rev", []pbio.Field{bf("a", pbio.Integer), bf("b", pbio.Integer), bf("c", pbio.Integer)})

	m := NewMorpher(Thresholds{}) // strict: only perfect matches
	var got *pbio.Record
	if err := m.RegisterFormat(v0, func(r *pbio.Record) error { got = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v2, To: v1, Code: "old.a = new.a; old.b = new.b + new.c;"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v1, To: v0, Code: "old.a = new.a + new.b;"}); err != nil {
		t.Fatal(err)
	}

	in := pbio.NewRecord(v2).
		MustSet("a", pbio.Int(1)).
		MustSet("b", pbio.Int(2)).
		MustSet("c", pbio.Int(3))
	if err := m.Deliver(in); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("a"); v.Int64() != 6 {
		t.Errorf("chained result a = %d, want 1+2+3 = 6", v.Int64())
	}
	ex, err := m.Explain(in.Format())
	if err != nil {
		t.Fatal(err)
	}
	if ex.ChainLen != 2 || !ex.Perfect || ex.Target != v0 {
		t.Errorf("Explain = %+v, want 2-step perfect chain to v0", ex)
	}
	if st := m.Stats(); st.Compiled != 2 {
		t.Errorf("Compiled = %d, want 2", st.Compiled)
	}
}

func TestMorpherTransformBeatsLossyIdentity(t *testing.T) {
	// Condition (v): a supplied transform that reaches the target exactly
	// (diff 0) must be preferred over delivering the raw message with a
	// field dropped (diff 1).
	base := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	extended := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("opt", pbio.Integer)})

	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(base, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: extended, To: base, Code: "old.x = new.x;"}); err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explain(extended)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ChainLen != 1 || !ex.Perfect {
		t.Errorf("Explain = %+v, want a perfect 1-step transform", ex)
	}
}

func TestMorpherIdentityWinsTies(t *testing.T) {
	// Incoming A and transform target B score identically against the
	// registered format T (each drops one field, defaults none). The
	// identity chain is enumerated first and must win, avoiding a useless
	// transformation.
	a := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("a_only", pbio.Integer)})
	b := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("b_only", pbio.Integer)})
	target := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})

	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(target, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: a, To: b, Code: "old.x = new.x; old.b_only = new.a_only;"}); err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explain(a)
	if err != nil {
		t.Fatal(err)
	}
	if ex.ChainLen != 0 {
		t.Errorf("ChainLen = %d, want 0 (identity preferred on exact ties)", ex.ChainLen)
	}
	if len(ex.Dropped) != 1 || ex.Dropped[0] != "a_only" {
		t.Errorf("Dropped = %v", ex.Dropped)
	}
}

// TestMorpherOptionalExtraField reproduces the intro's motivating case: "if
// a message from a new server contains an extra field that provides optional
// information, clients who do not understand or expect that field should
// still be able to operate."
func TestMorpherOptionalExtraField(t *testing.T) {
	oldFmt := fmtOrDie(t, "Quote", []pbio.Field{bf("symbol", pbio.String), bf("price", pbio.Float)})
	newFmt := fmtOrDie(t, "Quote", []pbio.Field{bf("symbol", pbio.String), bf("price", pbio.Float), bf("volume", pbio.Integer)})

	m := NewMorpher(DefaultThresholds)
	var got *pbio.Record
	if err := m.RegisterFormat(oldFmt, func(r *pbio.Record) error { got = r; return nil }); err != nil {
		t.Fatal(err)
	}
	in := pbio.NewRecord(newFmt).
		MustSet("symbol", pbio.Str("ACME")).
		MustSet("price", pbio.Float64(12.5)).
		MustSet("volume", pbio.Int(1000))
	if err := m.Deliver(in); err != nil {
		t.Fatalf("extra optional field must not break the old client: %v", err)
	}
	if v, _ := got.Get("price"); v.Float64() != 12.5 {
		t.Errorf("price = %v", v)
	}
	if _, ok := got.Get("volume"); ok {
		t.Error("volume must have been dropped")
	}
	if st := m.Stats(); st.Converted != 1 || st.Transformed != 0 {
		t.Errorf("stats = %+v (expected pure conversion, no transform)", st)
	}
}

func TestMorpherRejection(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	unrelated := fmtOrDie(t, "other", []pbio.Field{bf("y", pbio.String)})

	m := NewMorpher(Thresholds{})
	if err := m.RegisterFormat(f, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	err := m.Deliver(pbio.NewRecord(unrelated))
	if !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
	if _, _, err := m.Morph(pbio.NewRecord(unrelated)); !errors.Is(err, ErrRejected) {
		t.Errorf("Morph err = %v, want ErrRejected", err)
	}
	if st := m.Stats(); st.Rejected != 2 {
		t.Errorf("Rejected = %d, want 2", st.Rejected)
	}

	// With a default handler, the original record arrives there instead.
	var fallback *pbio.Record
	m.SetDefaultHandler(func(r *pbio.Record) error { fallback = r; return nil })
	in := pbio.NewRecord(unrelated)
	if err := m.Deliver(in); err != nil {
		t.Fatal(err)
	}
	if fallback != in {
		t.Error("default handler must receive the unmodified record")
	}
	ex, err := m.Explain(unrelated)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Rejected {
		t.Error("Explain must report rejection")
	}
}

func TestMorpherNameScoping(t *testing.T) {
	// Same structure, different format name: must NOT match (the reader's
	// candidate set Fr is scoped to formats with the incoming name).
	a := fmtOrDie(t, "AlphaMsg", []pbio.Field{bf("x", pbio.Integer)})
	b := fmtOrDie(t, "BetaMsg", []pbio.Field{bf("x", pbio.Integer)})
	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(a, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(pbio.NewRecord(b)); !errors.Is(err, ErrRejected) {
		t.Errorf("cross-name delivery err = %v, want ErrRejected", err)
	}
}

func TestMorpherBadTransform(t *testing.T) {
	v1, v2 := echoV1V2(t)
	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(v1, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	bad := &Xform{From: v2, To: v1, Code: "old.no_such_field = 1;"}
	if err := bad.Validate(); err == nil {
		t.Error("Validate must reject code referencing unknown fields")
	}
	if err := m.AddTransform(bad); err != nil {
		t.Fatal(err) // lazily compiled; registration succeeds
	}
	err := m.Deliver(v2Response(t, v2, 1))
	if !errors.Is(err, ErrBadTransform) {
		t.Errorf("err = %v, want ErrBadTransform", err)
	}
}

func TestMorpherRegistrationValidation(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(nil, func(*pbio.Record) error { return nil }); err == nil {
		t.Error("nil format must be rejected")
	}
	if err := m.RegisterFormat(f, nil); err == nil {
		t.Error("nil handler must be rejected")
	}
	if err := m.AddTransform(nil); err == nil {
		t.Error("nil transform must be rejected")
	}
	if err := m.AddTransform(&Xform{From: f}); err == nil {
		t.Error("transform without To must be rejected")
	}
}

func TestMorpherHandlerReplacement(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	m := NewMorpher(DefaultThresholds)
	firstCalled, secondCalled := 0, 0
	if err := m.RegisterFormat(f, func(*pbio.Record) error { firstCalled++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterFormat(f, func(*pbio.Record) error { secondCalled++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(pbio.NewRecord(f)); err != nil {
		t.Fatal(err)
	}
	if firstCalled != 0 || secondCalled != 1 {
		t.Errorf("re-registration must replace the handler: first=%d second=%d", firstCalled, secondCalled)
	}
}

func TestMorpherCacheInvalidation(t *testing.T) {
	old := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	incoming := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer)})
	m := NewMorpher(DefaultThresholds)
	oldHits, newHits := 0, 0
	if err := m.RegisterFormat(old, func(*pbio.Record) error { oldHits++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(pbio.NewRecord(incoming)); err != nil {
		t.Fatal(err)
	}
	// Registering the exact incoming format must invalidate the cached
	// lossy decision and win from now on.
	if err := m.RegisterFormat(incoming, func(*pbio.Record) error { newHits++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(pbio.NewRecord(incoming)); err != nil {
		t.Fatal(err)
	}
	if oldHits != 1 || newHits != 1 {
		t.Errorf("oldHits=%d newHits=%d, want 1 and 1", oldHits, newHits)
	}
}

func TestMorpherTransformCycleTerminates(t *testing.T) {
	a := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	b := fmtOrDie(t, "m", []pbio.Field{bf("y", pbio.Integer)})
	target := fmtOrDie(t, "m", []pbio.Field{bf("z", pbio.Integer)})
	m := NewMorpher(Thresholds{})
	if err := m.RegisterFormat(target, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// a → b → a is a cycle; reachability must terminate and reject.
	if err := m.AddTransform(&Xform{From: a, To: b, Code: "old.y = new.x;"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: b, To: a, Code: "old.x = new.y;"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Deliver(pbio.NewRecord(a)); !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
}

func TestMorpherConcurrentDelivery(t *testing.T) {
	v1, v2 := echoV1V2(t)
	m := NewMorpher(DefaultThresholds)
	var mu sync.Mutex
	total := 0
	if err := m.RegisterFormat(v1, func(r *pbio.Record) error {
		mu.Lock()
		defer mu.Unlock()
		total++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v2, To: v1, Code: figure5}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := m.Deliver(v2Response(t, v2, 3)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if total != 200 {
		t.Errorf("delivered %d, want 200", total)
	}
}

func TestXformSerdeRoundtrip(t *testing.T) {
	v1, v2 := echoV1V2(t)
	x := &Xform{From: v2, To: v1, Code: figure5}
	blob := EncodeXform(x)
	got, err := DecodeXform(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.From.Fingerprint() != v2.Fingerprint() || got.To.Fingerprint() != v1.Fingerprint() {
		t.Error("formats lost in transform serde")
	}
	if got.Code != figure5 {
		t.Error("code lost in transform serde")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("reconstructed transform must validate: %v", err)
	}

	for cut := 1; cut < len(blob); cut += 7 {
		if _, err := DecodeXform(blob[:len(blob)-cut]); err == nil {
			t.Fatalf("truncated blob at %d accepted", len(blob)-cut)
		}
	}
	if _, err := DecodeXform(append(append([]byte{}, blob...), 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestMorpherDeliverEncoded(t *testing.T) {
	v1, v2 := echoV1V2(t)
	m := NewMorpher(DefaultThresholds)
	var got *pbio.Record
	if err := m.RegisterFormat(v1, func(r *pbio.Record) error { got = r; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v2, To: v1, Code: figure5}); err != nil {
		t.Fatal(err)
	}
	data := pbio.EncodeRecord(v2Response(t, v2, 2))
	if err := m.DeliverEncoded(data, v2); err != nil {
		t.Fatal(err)
	}
	if got == nil || !got.Format().SameStructure(v1) {
		t.Error("encoded delivery failed")
	}
	if err := m.DeliverEncoded(data[:5], v2); err == nil {
		t.Error("truncated message must error")
	}
}
