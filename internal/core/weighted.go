package core

import "repro/internal/pbio"

// Weighted matching implements the paper's future-work direction: "the
// ability to weight different fields and sub-fields based on some measure
// of importance" (§6). A Weigher assigns an importance to every basic
// field; WeightedDiff and WeightedMismatchRatio generalize Algorithm 1 and
// M_r by summing importances instead of counting fields, so losing a
// critical field can veto a match that losing ten cosmetic fields would
// not.

// Weigher returns the importance of a basic field. path is the
// dot-separated field path from the base format (list elements use their
// list field's path, e.g. "member_list.info"). Return 1 for the paper's
// unweighted behaviour, 0 to make a field fully optional, and larger
// values for fields whose loss should dominate the match decision.
type Weigher func(path string, fld *pbio.Field) float64

// UnitWeigher weighs every field 1, reducing the weighted metrics to the
// paper's original Diff and MismatchRatio.
func UnitWeigher(string, *pbio.Field) float64 { return 1 }

// WeightedDiff is Algorithm 1 with importance weights: the summed
// importance of basic fields present in f1 but not in f2.
func WeightedDiff(f1, f2 *pbio.Format, w Weigher) float64 {
	if w == nil {
		w = UnitWeigher
	}
	return weightedFormatDiff(f1, f2, w, "")
}

func weightedFormatDiff(f1, f2 *pbio.Format, w Weigher, prefix string) float64 {
	d := 0.0
	for i := 0; i < f1.NumFields(); i++ {
		fld := f1.Field(i)
		d += weightedFieldDiff(fld, f2.FieldByName(fld.Name), w, joinPath(prefix, fld.Name))
	}
	return d
}

func joinPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "." + name
}

func weightedFieldDiff(a, b *pbio.Field, w Weigher, path string) float64 {
	switch a.Kind {
	case pbio.Complex:
		if b == nil || b.Kind != pbio.Complex {
			return weightedWeightOf(a, w, path)
		}
		return weightedFormatDiff(a.Sub, b.Sub, w, path)
	case pbio.List:
		if b == nil || b.Kind != pbio.List {
			return weightedWeightOf(a, w, path)
		}
		return weightedElemDiff(a.Elem, b.Elem, w, path)
	default:
		if b == nil || !b.Kind.IsBasic() || !basicCompatible(a.Kind, b.Kind) {
			return w(path, a)
		}
		return 0
	}
}

func weightedElemDiff(a, b *pbio.Field, w Weigher, path string) float64 {
	switch a.Kind {
	case pbio.Complex:
		if b.Kind != pbio.Complex {
			return weightedWeightOf(a, w, path)
		}
		return weightedFormatDiff(a.Sub, b.Sub, w, path)
	case pbio.List:
		if b.Kind != pbio.List {
			return weightedWeightOf(a, w, path)
		}
		return weightedElemDiff(a.Elem, b.Elem, w, path)
	default:
		if !b.Kind.IsBasic() || !basicCompatible(a.Kind, b.Kind) {
			return w(path, a)
		}
		return 0
	}
}

// weightedWeightOf is the weighted analog of Format.Weight for one field:
// the summed importance of all basic fields it contains.
func weightedWeightOf(f *pbio.Field, w Weigher, path string) float64 {
	switch f.Kind {
	case pbio.Complex:
		return weightedFormatWeight(f.Sub, w, path)
	case pbio.List:
		return weightedWeightOf(f.Elem, w, path)
	default:
		return w(path, f)
	}
}

func weightedFormatWeight(f *pbio.Format, w Weigher, prefix string) float64 {
	total := 0.0
	for i := 0; i < f.NumFields(); i++ {
		fld := f.Field(i)
		total += weightedWeightOf(fld, w, joinPath(prefix, fld.Name))
	}
	return total
}

// WeightedFormatWeight is the importance-weighted W_f of a whole format.
func WeightedFormatWeight(f *pbio.Format, w Weigher) float64 {
	if w == nil {
		w = UnitWeigher
	}
	return weightedFormatWeight(f, w, "")
}

// WeightedMismatchRatio is M_r with importances: the fraction of f2's
// summed importance that f1 cannot supply.
func WeightedMismatchRatio(f1, f2 *pbio.Format, w Weigher) float64 {
	total := WeightedFormatWeight(f2, w)
	if total == 0 {
		return 0
	}
	return WeightedDiff(f2, f1, w) / total
}

// WeightedThresholds bound weighted matching: Diff caps the summed
// importance of dropped fields; Mismatch caps the defaulted fraction of the
// target's importance.
type WeightedThresholds struct {
	Diff     float64
	Mismatch float64
}

// WeightedMatch is a MaxMatchWeighted result.
type WeightedMatch struct {
	From     *pbio.Format
	To       *pbio.Format
	Diff     float64
	Mismatch float64
}

// IsPerfect reports a zero-loss pair under the given weights.
func (m WeightedMatch) IsPerfect() bool { return m.Diff == 0 && m.Mismatch == 0 }

// MaxMatchWeighted is MaxMatch with importance weights: same conditions
// (i)–(v), with Diff and M_r replaced by their weighted forms.
func MaxMatchWeighted(f1s, f2s []*pbio.Format, th WeightedThresholds, w Weigher) (best WeightedMatch, ok bool) {
	if w == nil {
		w = UnitWeigher
	}
	for _, f1 := range f1s {
		if f1 == nil {
			continue
		}
		for _, f2 := range f2s {
			if f2 == nil {
				continue
			}
			d := WeightedDiff(f1, f2, w)
			if d > th.Diff {
				continue
			}
			mr := WeightedMismatchRatio(f1, f2, w)
			if mr > th.Mismatch {
				continue
			}
			cand := WeightedMatch{From: f1, To: f2, Diff: d, Mismatch: mr}
			if !ok || weightedLess(cand, best) {
				best, ok = cand, true
			}
		}
	}
	return best, ok
}

func weightedLess(a, b WeightedMatch) bool {
	if a.Mismatch != b.Mismatch {
		return a.Mismatch < b.Mismatch
	}
	return a.Diff < b.Diff
}
