package core

import (
	"errors"
	"testing"

	"repro/internal/pbio"
)

// freshPair builds two same-named formats one transform apart, for tests of
// the out-of-band transform sources.
func freshPair(t *testing.T) (wide, narrow *pbio.Format, x *Xform) {
	t.Helper()
	wide = fmtOrDie(t, "ev", []pbio.Field{bf("a", pbio.Integer), bf("b", pbio.Integer)})
	narrow = fmtOrDie(t, "ev", []pbio.Field{bf("a", pbio.Integer)})
	return wide, narrow, &Xform{From: wide, To: narrow, Code: "old.a = new.a;"}
}

// TestFreshTransformSourceConsultedBeforeReject: when the primary transform
// source (a registry client's cached read) yields nothing routable, the
// fresh source must get a chance before the reject is cached — the stale-LRU
// case of a structurally reused fingerprint. The outcome is then cached like
// any decision: neither source is consulted again for that fingerprint.
func TestFreshTransformSourceConsultedBeforeReject(t *testing.T) {
	wide, narrow, x := freshPair(t)
	var stale, fresh int
	m := NewMorpher(Thresholds{},
		WithTransformSource(func(fp uint64) []*Xform { stale++; return nil }),
		WithFreshTransformSource(func(fp uint64) []*Xform { fresh++; return []*Xform{x} }),
	)
	var got int
	if err := m.RegisterFormat(narrow, func(r *pbio.Record) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(wide).MustSet("a", pbio.Int(7)).MustSet("b", pbio.Int(8))
	if err := m.Deliver(rec); err != nil {
		t.Fatalf("delivery rejected despite fresh source holding the route: %v", err)
	}
	if got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
	if stale != 1 || fresh != 1 {
		t.Fatalf("source consultations stale=%d fresh=%d, want 1/1", stale, fresh)
	}
	if err := m.Deliver(rec); err != nil {
		t.Fatal(err)
	}
	if stale != 1 || fresh != 1 {
		t.Fatalf("cached delivery re-consulted a source: stale=%d fresh=%d", stale, fresh)
	}
}

// TestFreshSourceNotConsultedWhenCachedSourceRoutes: the fresh source is a
// second chance, not a second round-trip — a primary source that already
// produced a route must keep the fresh one idle.
func TestFreshSourceNotConsultedWhenCachedSourceRoutes(t *testing.T) {
	wide, narrow, x := freshPair(t)
	var fresh int
	m := NewMorpher(Thresholds{},
		WithTransformSource(func(fp uint64) []*Xform { return []*Xform{x} }),
		WithFreshTransformSource(func(fp uint64) []*Xform { fresh++; return nil }),
	)
	if err := m.RegisterFormat(narrow, func(r *pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(wide).MustSet("a", pbio.Int(1)).MustSet("b", pbio.Int(2))
	if err := m.Deliver(rec); err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("fresh source consulted %d times although the cached source routed", fresh)
	}
}

// TestInvalidateHealsCachedReject: a reject decision is cached permanently —
// no later message re-runs the cold path on its own — so a transform that
// arrives after the reject (a registry watch event) must be able to heal it
// via Invalidate. Without the call the reject must keep sticking: that it
// does is exactly what makes the invalidation hook load-bearing.
func TestInvalidateHealsCachedReject(t *testing.T) {
	wide, narrow, x := freshPair(t)
	var route []*Xform
	var consults int
	m := NewMorpher(Thresholds{},
		WithTransformSource(func(fp uint64) []*Xform { consults++; return route }),
	)
	if err := m.RegisterFormat(narrow, func(r *pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(wide).MustSet("a", pbio.Int(1)).MustSet("b", pbio.Int(2))
	if err := m.Deliver(rec); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	// The metadata lands (too late), but the cached reject keeps winning.
	route = []*Xform{x}
	if err := m.Deliver(rec); !errors.Is(err, ErrRejected) {
		t.Fatalf("second delivery: err = %v, want the cached ErrRejected", err)
	}
	if consults != 1 {
		t.Fatalf("source consulted %d times before invalidation, want 1 (reject cached)", consults)
	}
	m.Invalidate(wide.Fingerprint())
	if err := m.Deliver(rec); err != nil {
		t.Fatalf("delivery after Invalidate: %v", err)
	}
	if consults != 2 {
		t.Fatalf("source consulted %d times after invalidation, want 2", consults)
	}
}
