package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pbio"
)

// randomFormat builds a pseudo-random format from a deterministic seed:
// a handful of fields drawn from a shared name pool (so pairs overlap),
// with nesting and lists up to depth 2.
func randomFormat(rng *rand.Rand, depth int) *pbio.Format {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	n := 1 + rng.Intn(len(names)-1)
	fields := make([]pbio.Field, 0, n)
	for i := 0; i < n; i++ {
		fields = append(fields, randomField(rng, names[i], depth))
	}
	f, err := pbio.NewFormat("quick", fields)
	if err != nil {
		panic(err) // generator bug, not a property failure
	}
	return f
}

func randomField(rng *rand.Rand, name string, depth int) pbio.Field {
	kinds := []pbio.Kind{pbio.Integer, pbio.Unsigned, pbio.Float, pbio.String, pbio.Boolean, pbio.Char, pbio.Enum}
	if depth > 0 {
		kinds = append(kinds, pbio.Complex, pbio.List)
	}
	k := kinds[rng.Intn(len(kinds))]
	switch k {
	case pbio.Complex:
		return pbio.Field{Name: name, Kind: pbio.Complex, Sub: randomFormat(rng, depth-1)}
	case pbio.List:
		elemKinds := []pbio.Kind{pbio.Integer, pbio.Float, pbio.String}
		ek := elemKinds[rng.Intn(len(elemKinds))]
		if depth > 1 && rng.Intn(2) == 0 {
			return pbio.Field{Name: name, Kind: pbio.List,
				Elem: &pbio.Field{Kind: pbio.Complex, Sub: randomFormat(rng, depth-2)}}
		}
		return pbio.Field{Name: name, Kind: pbio.List, Elem: &pbio.Field{Kind: ek}}
	case pbio.Integer, pbio.Unsigned, pbio.Enum:
		sizes := []int{1, 2, 4, 8}
		return pbio.Field{Name: name, Kind: k, Size: sizes[rng.Intn(len(sizes))]}
	case pbio.Float:
		sizes := []int{4, 8}
		return pbio.Field{Name: name, Kind: k, Size: sizes[rng.Intn(len(sizes))]}
	default:
		return pbio.Field{Name: name, Kind: k}
	}
}

func randomRecordOf(rng *rand.Rand, f *pbio.Format) *pbio.Record {
	r := pbio.NewRecord(f)
	for i := 0; i < f.NumFields(); i++ {
		fld := f.Field(i)
		if err := r.SetIndex(i, randomValueOf(rng, fld)); err != nil {
			panic(err)
		}
	}
	return r
}

func randomValueOf(rng *rand.Rand, fld *pbio.Field) pbio.Value {
	switch fld.Kind {
	case pbio.Integer:
		return pbio.Int(int64(int8(rng.Uint64())))
	case pbio.Unsigned:
		return pbio.Uint(uint64(uint8(rng.Uint64())))
	case pbio.Enum:
		return pbio.EnumOf(int64(rng.Intn(4)))
	case pbio.Char:
		return pbio.CharOf(byte('a' + rng.Intn(26)))
	case pbio.Float:
		return pbio.Float64(float64(rng.Intn(1000)) / 4)
	case pbio.String:
		return pbio.Str(string(rune('A' + rng.Intn(26))))
	case pbio.Boolean:
		return pbio.Bool(rng.Intn(2) == 1)
	case pbio.Complex:
		return pbio.RecordOf(randomRecordOf(rng, fld.Sub))
	case pbio.List:
		n := rng.Intn(3)
		elems := make([]pbio.Value, n)
		for i := range elems {
			elems[i] = randomValueOf(rng, fld.Elem)
		}
		return pbio.ListOf(elems)
	default:
		return pbio.Value{}
	}
}

// TestQuickConverterTotal: for ANY pair of formats, the name-wise converter
// must succeed on any well-formed input record and produce a record of the
// target format that itself encodes and decodes cleanly. This is the
// invariant Algorithm 2's fill/drop step relies on: once MaxMatch accepts a
// pair, conversion cannot fail at message time.
func TestQuickConverterTotal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		from := randomFormat(rng, 2)
		to := randomFormat(rng, 2)
		conv := NewConverter(from, to)
		rec := randomRecordOf(rng, from)

		out, err := conv.Convert(rec)
		if err != nil {
			t.Logf("seed %d: convert failed: %v\nfrom:\n%s\nto:\n%s", seed, err, from, to)
			return false
		}
		if !out.Format().SameStructure(to) {
			t.Logf("seed %d: output format mismatch", seed)
			return false
		}
		// The converted record must be a valid instance of `to`.
		back, err := pbio.DecodeRecord(pbio.EncodeRecord(out), to)
		if err != nil {
			t.Logf("seed %d: converted record does not round-trip: %v", seed, err)
			return false
		}
		return back.Equal(out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiffTriangle sanity-checks metric behaviour over random formats:
// Diff(f, f) = 0, Diff is non-negative, and a perfect pair always converts
// without loss of any field value that both sides share.
func TestQuickDiffProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := randomFormat(rng, 2)
		f2 := randomFormat(rng, 2)
		if Diff(f1, f1) != 0 || Diff(f2, f2) != 0 {
			return false
		}
		if Diff(f1, f2) < 0 || Diff(f2, f1) < 0 {
			return false
		}
		if MismatchRatio(f1, f2) < 0 || MismatchRatio(f1, f2) > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
