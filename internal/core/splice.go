package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pbio"
)

// Splice programs are the byte-level fast lane of the delivery pipeline:
// a Converter plan between two fixed-stride formats (pbio.Layout) compiled
// down to precomputed copy runs plus a literal template for filled fields.
// Executing one is a handful of memcpys on the encoded payload — no Record
// is materialized, no Value is boxed — which is this reproduction's closest
// analog to the paper's point that morphing stays near native speed because
// transformations run as compiled code over native buffers rather than
// through a generic materialized representation.
//
// A plan compiles iff both formats are fixed-stride and every copied field
// has identical kind and wire width on both sides (so a byte copy equals
// the record lane's decode→coerce→encode). Anything else — strings, lists,
// width changes, ecode transformation steps — falls back to the record
// lane; correctness never depends on spliceability.
//
// One representational note: the record lane normalizes boolean wire bytes
// (any non-zero decodes to 1) while a splice preserves the source byte.
// Payloads produced by EncodeRecord are always canonical, so the two lanes
// are byte-identical on anything this codebase emits.

// spliceRun is one contiguous copy: n bytes from the source payload at
// srcOff into the output payload at dstOff.
type spliceRun struct {
	srcOff, dstOff, n int
}

// spliceProgram is a compiled []byte → []byte conversion plan.
type spliceProgram struct {
	src, dst *pbio.Format
	srcSize  int // fixed payload size of src (validation)
	dstSize  int
	envelope [pbio.EnvelopeSize]byte // dst fingerprint, precomputed
	template []byte                  // dstSize bytes with default/zero fills baked in
	runs     []spliceRun             // coalesced copy runs, in dst order
}

// compileSplice lowers a Converter plan to a splice program, or reports
// ok=false when the plan is not expressible as pure byte copies.
func compileSplice(c *Converter) (*spliceProgram, bool) {
	sl, dl := c.from.Layout(), c.to.Layout()
	if !sl.Fixed() || !dl.Fixed() {
		return nil, false
	}
	p := &spliceProgram{
		src:     c.from,
		dst:     c.to,
		srcSize: sl.Size(),
		dstSize: dl.Size(),
	}
	binary.LittleEndian.PutUint64(p.envelope[:], c.to.Fingerprint())
	if !p.addConverter(c, 0, 0) {
		return nil, false
	}
	// The fill template is exactly what the record lane produces from an
	// all-zero source record: copied fields hold zeros (overwritten by the
	// runs at execution time) and filled fields hold their encoded defaults.
	// Deriving it by running the record lane once guarantees fill bytes are
	// byte-identical between lanes by construction.
	out, err := c.Convert(pbio.NewRecord(c.from))
	if err != nil {
		return nil, false
	}
	p.template = pbio.AppendPayload(make([]byte, 0, p.dstSize), out)
	if len(p.template) != p.dstSize {
		return nil, false // drift guard; unreachable for fixed formats
	}
	p.coalesce()
	return p, true
}

// addConverter appends copy runs for one converter level, with the given
// payload base offsets (non-zero when recursing into nested complex
// fields). It returns false when any step cannot be a byte copy.
func (p *spliceProgram) addConverter(c *Converter, srcBase, dstBase int) bool {
	dl := c.to.Layout()
	sl := c.from.Layout()
	for _, s := range c.steps {
		dstOff, _, ok := dl.FieldSpan(s.dstIdx)
		if !ok {
			return false
		}
		switch s.mode {
		case convFill:
			// Baked into the template; nothing to do at execution time.
		case convCopyScalar:
			srcFld, dstFld := c.from.Field(s.srcIdx), c.to.Field(s.dstIdx)
			if srcFld.Kind != dstFld.Kind || srcFld.Size != dstFld.Size {
				return false // width/kind change needs the record lane's coercion
			}
			srcOff, n, ok := sl.FieldSpan(s.srcIdx)
			if !ok {
				return false
			}
			p.runs = append(p.runs, spliceRun{srcOff: srcBase + srcOff, dstOff: dstBase + dstOff, n: n})
		case convComplex:
			srcOff, _, ok := sl.FieldSpan(s.srcIdx)
			if !ok {
				return false
			}
			if !p.addConverter(s.sub, srcBase+srcOff, dstBase+dstOff) {
				return false
			}
		default: // strings and lists cannot appear in fixed-stride formats
			return false
		}
	}
	return true
}

// coalesce merges copy runs that are contiguous in both source and
// destination, so a reordering-free conversion collapses to a single copy.
// Runs are generated in destination order with strictly increasing dstOff,
// which is the only order coalescing needs.
func (p *spliceProgram) coalesce() {
	if len(p.runs) < 2 {
		return
	}
	out := p.runs[:1]
	for _, r := range p.runs[1:] {
		last := &out[len(out)-1]
		if last.srcOff+last.n == r.srcOff && last.dstOff+last.n == r.dstOff {
			last.n += r.n
			continue
		}
		out = append(out, r)
	}
	p.runs = out
}

// run executes the program on an enveloped source message, returning an
// enveloped message of the destination format. The output is the program's
// single allocation. A payload whose length does not match the source
// format's fixed stride is rejected — short (or long) payloads never have
// bytes copied out of them.
func (p *spliceProgram) run(data []byte) ([]byte, error) {
	if len(data) != pbio.EnvelopeSize+p.srcSize {
		return nil, fmt.Errorf("%w: splice lane: %d payload bytes, fixed format %q needs %d",
			pbio.ErrShortMessage, len(data)-pbio.EnvelopeSize, p.src.Name(), p.srcSize)
	}
	payload := data[pbio.EnvelopeSize:]
	out := make([]byte, pbio.EnvelopeSize+p.dstSize)
	copy(out, p.envelope[:])
	body := out[pbio.EnvelopeSize:]
	copy(body, p.template)
	for _, r := range p.runs {
		copy(body[r.dstOff:r.dstOff+r.n], payload[r.srcOff:])
	}
	return out, nil
}
