package core

import (
	"testing"

	"repro/internal/pbio"
	"repro/internal/trace"
)

// stagesByName collects the tracer's retained spans keyed by stage name,
// preserving multiplicity.
func stagesByName(tr *trace.Tracer) map[string][]trace.SpanRecord {
	out := make(map[string][]trace.SpanRecord)
	for _, r := range tr.Snapshot() {
		out[r.Stage.String()] = append(out[r.Stage.String()], r)
	}
	return out
}

// TestTraceSpansSpliceLane: a sampled identity delivery on the byte lane
// must record decision, lane and handler spans, properly nested.
func TestTraceSpansSpliceLane(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{{Name: "x", Kind: pbio.Integer, Size: 8}})
	tr := trace.New(trace.Config{Capacity: 64})
	m := NewMorpher(DefaultThresholds, WithTracer(tr))
	if err := m.RegisterFormatEncoded(f, func([]byte, *pbio.Format) error { return nil }); err != nil {
		t.Fatal(err)
	}
	data := pbio.EncodeRecord(pbio.NewRecord(f).MustSet("x", pbio.Int(1)))

	root := tr.StartTrace(trace.StageFrameRead)
	if err := m.DeliverEncodedCtx(data, f, root.Context()); err != nil {
		t.Fatal(err)
	}
	root.End()

	if st := m.Stats(); st.SpliceHits != 1 {
		t.Fatalf("delivery did not take the splice lane: %+v", st)
	}
	spans := stagesByName(tr)
	for _, want := range []string{"frame_read", "morph_decide", "lane_splice", "deliver"} {
		if len(spans[want]) != 1 {
			t.Fatalf("stage %q recorded %d times, want 1 (have %v)", want, len(spans[want]), keys(spans))
		}
	}
	if got := spans["morph_decide"][0].FP; got != f.Fingerprint() {
		t.Errorf("decision span FP = %016x, want %016x", got, f.Fingerprint())
	}
	if spans["lane_splice"][0].Parent != root.Context().Span {
		t.Error("lane span must parent under the delivery context")
	}
	if spans["deliver"][0].Parent != spans["lane_splice"][0].Span {
		t.Error("deliver span must nest inside the lane span")
	}
	for _, r := range tr.Snapshot() {
		if r.Trace != root.Context().Trace {
			t.Fatalf("span %v escaped the trace", r.Stage)
		}
	}
}

// TestTraceSpansRecordLaneXform: a transformation-chain delivery must record
// the record lane and one span per chain step, nested inside it.
func TestTraceSpansRecordLaneXform(t *testing.T) {
	from := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer)})
	to := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	tr := trace.New(trace.Config{Capacity: 64})
	m := NewMorpher(DefaultThresholds, WithTracer(tr))
	if err := m.RegisterFormat(to, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: from, To: to, Code: "old.x = new.x;"}); err != nil {
		t.Fatal(err)
	}
	data := pbio.EncodeRecord(pbio.NewRecord(from).MustSet("x", pbio.Int(3)).MustSet("y", pbio.Int(4)))

	root := tr.StartTrace(trace.StageFrameRead)
	if err := m.DeliverEncodedCtx(data, from, root.Context()); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := stagesByName(tr)
	for _, want := range []string{"morph_decide", "lane_record", "xform_step", "deliver"} {
		if len(spans[want]) != 1 {
			t.Fatalf("stage %q recorded %d times, want 1 (have %v)", want, len(spans[want]), keys(spans))
		}
	}
	step := spans["xform_step"][0]
	if step.Parent != spans["lane_record"][0].Span {
		t.Error("xform_step must nest inside lane_record")
	}
	if step.N != 0 {
		t.Errorf("step index = %d, want 0", step.N)
	}
	if step.FP != to.Fingerprint() {
		t.Errorf("step FP = %016x, want destination %016x", step.FP, to.Fingerprint())
	}
}

// TestTraceSpansConvert: a name-wise fill/drop conversion on the record lane
// (variable-width, so no splice program compiles) records a convert span.
func TestTraceSpansConvert(t *testing.T) {
	src := fmtOrDie(t, "m", []pbio.Field{bf("s", pbio.String), bf("extra", pbio.Integer)})
	dst := fmtOrDie(t, "m", []pbio.Field{bf("s", pbio.String), {Name: "q", Kind: pbio.Integer, Default: pbio.Int(-1)}})
	tr := trace.New(trace.Config{Capacity: 64})
	m := NewMorpher(DefaultThresholds, WithTracer(tr))
	if err := m.RegisterFormat(dst, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	data := pbio.EncodeRecord(pbio.NewRecord(src).MustSet("s", pbio.Str("v")).MustSet("extra", pbio.Int(9)))

	root := tr.StartTrace(trace.StageFrameRead)
	if err := m.DeliverEncodedCtx(data, src, root.Context()); err != nil {
		t.Fatal(err)
	}
	root.End()

	if st := m.Stats(); st.Converted != 1 {
		t.Fatalf("expected a conversion: %+v", st)
	}
	spans := stagesByName(tr)
	for _, want := range []string{"morph_decide", "lane_record", "convert", "deliver"} {
		if len(spans[want]) != 1 {
			t.Fatalf("stage %q recorded %d times, want 1 (have %v)", want, len(spans[want]), keys(spans))
		}
	}
	if spans["convert"][0].Parent != spans["lane_record"][0].Span {
		t.Error("convert must nest inside lane_record")
	}
}

// TestTraceSpansBoxedDeliver: DeliverCtx (boxed record lane) emits the same
// decision/lane/handler stages.
func TestTraceSpansBoxedDeliver(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	tr := trace.New(trace.Config{Capacity: 64})
	m := NewMorpher(DefaultThresholds, WithTracer(tr))
	if err := m.RegisterFormat(f, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	root := tr.StartTrace(trace.StageFrameRead)
	if err := m.DeliverCtx(pbio.NewRecord(f).MustSet("x", pbio.Int(2)), root.Context()); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := stagesByName(tr)
	for _, want := range []string{"morph_decide", "lane_record", "deliver"} {
		if len(spans[want]) != 1 {
			t.Fatalf("stage %q recorded %d times, want 1 (have %v)", want, len(spans[want]), keys(spans))
		}
	}
}

// TestTraceDisabledCostsNothing: with a nil tracer — and with a live tracer
// but an unsampled context — the splice lane must stay allocation-free and
// record nothing, the property the "within 5% of PR 2" acceptance bar rests
// on.
func TestTraceDisabledCostsNothing(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{{Name: "x", Kind: pbio.Integer, Size: 8}})
	data := pbio.EncodeRecord(pbio.NewRecord(f).MustSet("x", pbio.Int(1)))

	build := func(opts ...MorpherOption) *Morpher {
		m := NewMorpher(DefaultThresholds, opts...)
		if err := m.RegisterFormatEncoded(f, func([]byte, *pbio.Format) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := m.DeliverEncoded(data, f); err != nil { // warm the decision cache
			t.Fatal(err)
		}
		return m
	}

	tr := trace.New(trace.Config{Capacity: 16})
	for name, m := range map[string]*Morpher{
		"nil tracer":         build(),
		"unsampled delivery": build(WithTracer(tr)),
	} {
		allocs := testing.AllocsPerRun(500, func() {
			if err := m.DeliverEncodedCtx(data, f, trace.Context{}); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on the splice lane, want 0", name, allocs)
		}
	}
	if tr.Total() != 0 {
		t.Errorf("unsampled deliveries recorded %d spans", tr.Total())
	}
}

func keys(m map[string][]trace.SpanRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
