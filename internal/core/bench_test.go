package core

import (
	"fmt"
	"testing"

	"repro/internal/pbio"
)

// benchFormats builds n structurally distinct formats sharing a name, each
// with ~f fields.
func benchFormats(b *testing.B, n, fields int) []*pbio.Format {
	b.Helper()
	out := make([]*pbio.Format, n)
	for i := range out {
		fs := make([]pbio.Field, 0, fields)
		for j := 0; j < fields; j++ {
			fs = append(fs, pbio.Field{
				Name: fmt.Sprintf("f%02d_%02d", (i+j)%fields, j),
				Kind: pbio.Integer,
			})
		}
		f, err := pbio.NewFormat("bench", fs)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = f
	}
	return out
}

// BenchmarkMaxMatchScaling measures the cold matching cost as the candidate
// sets grow — the cost that, thanks to the decision cache, is paid once per
// format rather than per message.
func BenchmarkMaxMatchScaling(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("candidates-%d", n), func(b *testing.B) {
			f1s := benchFormats(b, n, 16)
			f2s := benchFormats(b, n, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := MaxMatch(f1s, f2s, Thresholds{Diff: 64, Mismatch: 1}); !ok {
					b.Fatal("no match")
				}
			}
		})
	}
}

// BenchmarkDiff measures Algorithm 1 itself on the paper's v1/v2 formats.
func BenchmarkDiff(b *testing.B) {
	v1, v2 := echoBenchFormats(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Diff(v1, v2) != 6 {
			b.Fatal("wrong diff")
		}
	}
}

// BenchmarkWeightedDiff measures the weighted variant's overhead relative
// to BenchmarkDiff.
func BenchmarkWeightedDiff(b *testing.B) {
	v1, v2 := echoBenchFormats(b)
	w := func(path string, _ *pbio.Field) float64 {
		if path == "member_list.info" {
			return 5
		}
		return 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if WeightedDiff(v1, v2, w) <= 0 {
			b.Fatal("wrong diff")
		}
	}
}

// BenchmarkMorpherDeliverCached is the steady-state fast path: one map
// lookup plus the cached transform chain.
func BenchmarkMorpherDeliverCached(b *testing.B) {
	v1, v2 := echoBenchFormats(b)
	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(v1, func(*pbio.Record) error { return nil }); err != nil {
		b.Fatal(err)
	}
	if err := m.AddTransform(&Xform{From: v2, To: v1, Code: figure5}); err != nil {
		b.Fatal(err)
	}
	member := v2.FieldByName("member_list").Elem.Sub
	rec := pbio.NewRecord(v2).
		MustSet("member_count", pbio.Int(1)).
		MustSet("member_list", pbio.ListOf([]pbio.Value{
			pbio.RecordOf(pbio.NewRecord(member).
				MustSet("info", pbio.Str("tcp:x:1")).
				MustSet("ID", pbio.Int(1)).
				MustSet("is_Source", pbio.Bool(true))),
		}))
	if err := m.Deliver(rec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Deliver(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func echoBenchFormats(b *testing.B) (v1, v2 *pbio.Format) {
	b.Helper()
	entry, err := pbio.NewFormat("MemberEntry", []pbio.Field{
		{Name: "info", Kind: pbio.String},
		{Name: "ID", Kind: pbio.Integer, Size: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	memberV2, err := pbio.NewFormat("MemberV2", []pbio.Field{
		{Name: "info", Kind: pbio.String},
		{Name: "ID", Kind: pbio.Integer, Size: 4},
		{Name: "is_Source", Kind: pbio.Boolean},
		{Name: "is_Sink", Kind: pbio.Boolean},
	})
	if err != nil {
		b.Fatal(err)
	}
	v1, err = pbio.NewFormat("ChannelOpenResponse", []pbio.Field{
		{Name: "member_count", Kind: pbio.Integer, Size: 4},
		{Name: "member_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: entry}},
		{Name: "src_count", Kind: pbio.Integer, Size: 4},
		{Name: "src_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: entry}},
		{Name: "sink_count", Kind: pbio.Integer, Size: 4},
		{Name: "sink_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: entry}},
	})
	if err != nil {
		b.Fatal(err)
	}
	v2, err = pbio.NewFormat("ChannelOpenResponse", []pbio.Field{
		{Name: "member_count", Kind: pbio.Integer, Size: 4},
		{Name: "member_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: memberV2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return v1, v2
}
