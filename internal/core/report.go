package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pbio"
)

// FieldChange describes one difference between two format revisions, for
// tooling and logs. Path is dot-separated from the base format.
type FieldChange struct {
	Path string
	Kind ChangeKind
	From string // type description in the old format ("" for added fields)
	To   string // type description in the new format ("" for removed fields)
}

// ChangeKind classifies a FieldChange.
type ChangeKind uint8

// Change kinds.
const (
	FieldAdded ChangeKind = iota
	FieldRemoved
	FieldRetyped // same name, incompatible kind (morphing treats as remove+add)
	FieldResized // same kind, different wire width (morphing-compatible)
)

func (k ChangeKind) String() string {
	switch k {
	case FieldAdded:
		return "added"
	case FieldRemoved:
		return "removed"
	case FieldRetyped:
		return "retyped"
	case FieldResized:
		return "resized"
	default:
		return fmt.Sprintf("change(%d)", uint8(k))
	}
}

// DiffReport lists the field-level differences going from format a to
// format b, recursively through complex and list fields, sorted by path.
// It is the human-readable companion of Diff: fields reported as removed or
// retyped are what Diff(a, b) counts; added fields are what Diff(b, a)
// counts.
func DiffReport(a, b *pbio.Format) []FieldChange {
	var out []FieldChange
	diffReport(a, b, "", &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func diffReport(a, b *pbio.Format, prefix string, out *[]FieldChange) {
	seen := make(map[string]bool, a.NumFields())
	for i := 0; i < a.NumFields(); i++ {
		fa := a.Field(i)
		seen[fa.Name] = true
		path := joinPath(prefix, fa.Name)
		fb := b.FieldByName(fa.Name)
		if fb == nil {
			*out = append(*out, FieldChange{Path: path, Kind: FieldRemoved, From: fieldDesc(fa)})
			continue
		}
		diffFieldReport(fa, fb, path, out)
	}
	for i := 0; i < b.NumFields(); i++ {
		fb := b.Field(i)
		if seen[fb.Name] {
			continue
		}
		*out = append(*out, FieldChange{Path: joinPath(prefix, fb.Name), Kind: FieldAdded, To: fieldDesc(fb)})
	}
}

func diffFieldReport(fa, fb *pbio.Field, path string, out *[]FieldChange) {
	switch {
	case fa.Kind == pbio.Complex && fb.Kind == pbio.Complex:
		diffReport(fa.Sub, fb.Sub, path, out)
	case fa.Kind == pbio.List && fb.Kind == pbio.List:
		diffElemReport(fa.Elem, fb.Elem, path, out)
	case fa.Kind.IsBasic() && fb.Kind.IsBasic() && basicCompatible(fa.Kind, fb.Kind):
		if fa.Kind != fb.Kind || fa.Size != fb.Size {
			*out = append(*out, FieldChange{Path: path, Kind: FieldResized, From: fieldDesc(fa), To: fieldDesc(fb)})
		}
	default:
		*out = append(*out, FieldChange{Path: path, Kind: FieldRetyped, From: fieldDesc(fa), To: fieldDesc(fb)})
	}
}

func diffElemReport(ea, eb *pbio.Field, path string, out *[]FieldChange) {
	switch {
	case ea.Kind == pbio.Complex && eb.Kind == pbio.Complex:
		diffReport(ea.Sub, eb.Sub, path, out)
	case ea.Kind == pbio.List && eb.Kind == pbio.List:
		diffElemReport(ea.Elem, eb.Elem, path, out)
	case ea.Kind.IsBasic() && eb.Kind.IsBasic() && basicCompatible(ea.Kind, eb.Kind):
		if ea.Kind != eb.Kind || ea.Size != eb.Size {
			*out = append(*out, FieldChange{Path: path, Kind: FieldResized,
				From: "list of " + fieldDesc(ea), To: "list of " + fieldDesc(eb)})
		}
	default:
		*out = append(*out, FieldChange{Path: path, Kind: FieldRetyped,
			From: "list of " + fieldDesc(ea), To: "list of " + fieldDesc(eb)})
	}
}

func fieldDesc(f *pbio.Field) string {
	switch f.Kind {
	case pbio.Complex:
		return fmt.Sprintf("record %q (%d fields)", f.Sub.Name(), f.Sub.NumFields())
	case pbio.List:
		return "list of " + fieldDesc(f.Elem)
	case pbio.String:
		return "string"
	default:
		return fmt.Sprintf("%v(%d)", f.Kind, f.Size)
	}
}

// FormatChanges renders a DiffReport as one line per change, the format
// used by the ecodec and morphbench tools.
func FormatChanges(changes []FieldChange) string {
	if len(changes) == 0 {
		return "no structural changes\n"
	}
	var b strings.Builder
	for _, c := range changes {
		switch c.Kind {
		case FieldAdded:
			fmt.Fprintf(&b, "+ %-28s %s\n", c.Path, c.To)
		case FieldRemoved:
			fmt.Fprintf(&b, "- %-28s %s\n", c.Path, c.From)
		default:
			fmt.Fprintf(&b, "~ %-28s %s → %s (%s)\n", c.Path, c.From, c.To, c.Kind)
		}
	}
	return b.String()
}
