package core

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pbio"
)

// obsMorpher builds a v1-registered, v2→v1-transforming morpher wired to a
// fresh registry, mirroring the paper's Figure 5 shape in miniature.
func obsMorpher(t *testing.T, reg *obs.Registry) (m *Morpher, v1, v2 *pbio.Format) {
	t.Helper()
	v1 = fmtOrDie(t, "Sample", []pbio.Field{
		{Name: "id", Kind: pbio.Integer},
		{Name: "celsius", Kind: pbio.Float},
	})
	v2 = fmtOrDie(t, "Sample", []pbio.Field{
		{Name: "id", Kind: pbio.Integer},
		{Name: "kelvin", Kind: pbio.Float},
		{Name: "sensor", Kind: pbio.String},
	})
	m = NewMorpher(DefaultThresholds, WithObs(reg))
	if err := m.RegisterFormat(v1, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransform(&Xform{
		From: v2, To: v1,
		Code: "old.id = new.id; old.celsius = new.kelvin - 273.15;",
	}); err != nil {
		t.Fatal(err)
	}
	return m, v1, v2
}

// TestMorpherObs: with a registry attached, deliveries populate the core.*
// counters, the decision trace records the MaxMatch outcome (chosen pair,
// chain length, compile time), and the cold/hot histograms fill.
func TestMorpherObs(t *testing.T) {
	reg := obs.NewRegistry("core-test")
	m, _, v2 := obsMorpher(t, reg)

	rec := pbio.NewRecord(v2).
		MustSet("id", pbio.Int(1)).
		MustSet("kelvin", pbio.Float64(300.15)).
		MustSet("sensor", pbio.Str("s"))
	const n = 600 // enough deliveries that the 1/256-sampled hot path records
	for i := 0; i < n; i++ {
		if err := m.Deliver(rec); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if snap.Counters["core.delivered"] != n {
		t.Errorf("core.delivered = %d, want %d", snap.Counters["core.delivered"], n)
	}
	if snap.Counters["core.cache_hits"] != n-1 {
		t.Errorf("core.cache_hits = %d, want %d", snap.Counters["core.cache_hits"], n-1)
	}
	if snap.Counters["core.compiled"] != 1 {
		t.Errorf("core.compiled = %d, want 1", snap.Counters["core.compiled"])
	}
	if got := snap.Histograms["core.decide_cold_ns"]; got.Count != 1 {
		t.Errorf("core.decide_cold_ns count = %d, want 1", got.Count)
	}
	if got := snap.Histograms["core.deliver_hot_ns"]; got.Count == 0 {
		t.Error("core.deliver_hot_ns must record sampled cached deliveries")
	}
	if got := snap.Histograms["core.compile_ns"]; got.Count != 1 || got.Sum == 0 {
		t.Errorf("core.compile_ns = %+v, want one nonzero sample", got)
	}

	// Morpher counters and registry counters are the same instruments.
	if st := m.Stats(); st.Delivered != snap.Counters["core.delivered"] {
		t.Errorf("Stats().Delivered = %d, registry says %d", st.Delivered, snap.Counters["core.delivered"])
	}

	if len(snap.Decisions) != 1 {
		t.Fatalf("decision trace = %+v, want 1 entry", snap.Decisions)
	}
	d := snap.Decisions[0]
	if d.Format != "Sample" || d.From != "Sample" || d.To != "Sample" {
		t.Errorf("decision names = %+v", d)
	}
	if d.ChainLen != 1 || d.CompileNS <= 0 || d.Rejected {
		t.Errorf("decision = %+v, want chain 1 with compile time", d)
	}
	if d.Candidates < 2 {
		t.Errorf("decision candidates = %d, want ≥ 2 (identity + transform target)", d.Candidates)
	}
	if len(d.Fingerprint) != 16 {
		t.Errorf("fingerprint = %q, want 16 hex digits", d.Fingerprint)
	}
}

// TestMorpherObsReject: rejected formats leave a trace entry with a reason.
func TestMorpherObsReject(t *testing.T) {
	reg := obs.NewRegistry("core-reject")
	m, _, _ := obsMorpher(t, reg)
	alien := fmtOrDie(t, "Alien", []pbio.Field{{Name: "z", Kind: pbio.Integer}})
	if err := m.Deliver(pbio.NewRecord(alien)); err == nil {
		t.Fatal("alien format must be rejected")
	}
	snap := reg.Snapshot()
	if snap.Counters["core.rejected"] != 1 {
		t.Errorf("core.rejected = %d", snap.Counters["core.rejected"])
	}
	if len(snap.Decisions) != 1 || !snap.Decisions[0].Rejected || snap.Decisions[0].Reason == "" {
		t.Errorf("reject trace = %+v", snap.Decisions)
	}
}

// TestStatsString: the satellite task's log-line form.
func TestStatsString(t *testing.T) {
	s := Stats{Delivered: 10, CacheHits: 9, Compiled: 1, Rejected: 2}
	str := s.String()
	for _, want := range []string{"delivered=10", "cache_hits=9", "compiled=1", "rejected=2", "transformed=0"} {
		if !strings.Contains(str, want) {
			t.Errorf("Stats.String() = %q, missing %q", str, want)
		}
	}
}

// TestStatsSnapshotOrdering: under concurrent deliveries a Stats snapshot
// must never tear into an impossible state (sub-counter > Delivered). This
// is the documented guarantee of the fixed read order.
func TestStatsSnapshotOrdering(t *testing.T) {
	m, _, v2 := obsMorpher(t, nil)
	rec := pbio.NewRecord(v2).
		MustSet("id", pbio.Int(1)).
		MustSet("kelvin", pbio.Float64(280)).
		MustSet("sensor", pbio.Str("s"))

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Deliver(rec)
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		st := m.Stats()
		if st.CacheHits > st.Delivered || st.Transformed > st.Delivered ||
			st.Rejected > st.Delivered || st.Converted > st.Delivered {
			t.Fatalf("torn snapshot: %s", st)
		}
	}
	close(stop)
	<-done
}

// TestDeliverNoObsAllocationFree: with observability disabled, the cached
// perfect-match delivery path must not allocate at all — the acceptance
// bar for "a disabled registry costs one predictable branch".
func TestDeliverNoObsAllocationFree(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{{Name: "x", Kind: pbio.Integer}})
	m := NewMorpher(DefaultThresholds)
	if err := m.RegisterFormat(f, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(f).MustSet("x", pbio.Int(7))
	if err := m.Deliver(rec); err != nil { // populate the decision cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := m.Deliver(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached delivery allocates %.1f allocs/op without obs, want 0", allocs)
	}
}

// TestDeliverObsAllocationFree: the instrumented cached path must stay
// allocation-free too (sampling uses the existing counter; time.Now and
// Histogram.Observe do not allocate).
func TestDeliverObsAllocationFree(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{{Name: "x", Kind: pbio.Integer}})
	reg := obs.NewRegistry("alloc")
	m := NewMorpher(DefaultThresholds, WithObs(reg))
	if err := m.RegisterFormat(f, func(*pbio.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(f).MustSet("x", pbio.Int(7))
	if err := m.Deliver(rec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := m.Deliver(rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached delivery allocates %.1f allocs/op with obs, want 0", allocs)
	}
}
