package core

import (
	"math/rand"
	"testing"

	"repro/internal/pbio"
)

func TestDebugSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4916193831908799512))
	from := randomFormat(rng, 2)
	to := randomFormat(rng, 2)
	t.Logf("from:\n%s", from)
	t.Logf("to:\n%s", to)
	conv := NewConverter(from, to)
	rec := randomRecordOf(rng, from)
	out, err := conv.Convert(rec)
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	t.Logf("out: %v", out)
	if _, err := pbio.DecodeRecord(pbio.EncodeRecord(out), to); err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
}
