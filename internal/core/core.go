// Package core implements Message Morphing, the primary contribution of the
// ICDCS 2005 paper "Lightweight Morphing Support for Evolving Middleware
// Data Exchanges in Distributed Applications".
//
// The pieces map to the paper as follows:
//
//   - Diff is Algorithm 1: the recursive count of basic fields present in
//     one format but not another.
//   - MismatchRatio is the paper's M_r normalization metric.
//   - MaxMatch selects the best (incoming, understood) format pair subject
//     to DIFF_THRESHOLD and MISMATCH_THRESHOLD (conditions i–v).
//   - Morpher is the receiver-side engine of Algorithm 2: it caches
//     per-format decisions, compiles transformation code on demand, applies
//     transformation chains (Figure 1's retro-transformations), fills
//     default values for missing fields, drops unknown fields, and
//     dispatches to the handler registered for the matched format.
//
// A Morpher is safe for concurrent use; the expensive match-and-compile path
// runs once per incoming format fingerprint and is cached thereafter, which
// is what makes morphing viable on high-bandwidth flows.
package core
