package core

import (
	"testing"

	"repro/internal/pbio"
)

// spliceBenchFormats is a realistic fixed-stride telemetry pair: v2 is the
// wire format, v1 is the subscriber's older view (a reordered subset), so
// v2 → v1 is a genuine fill/drop conversion that compiles to a splice.
func spliceBenchFormats(b *testing.B) (v2, v1 *pbio.Format) {
	b.Helper()
	var err error
	v2, err = pbio.NewFormat("host_stats", []pbio.Field{
		{Name: "timestamp", Kind: pbio.Unsigned, Size: 8},
		{Name: "node_id", Kind: pbio.Integer, Size: 4},
		{Name: "cpu_load", Kind: pbio.Float, Size: 8},
		{Name: "mem_used", Kind: pbio.Unsigned, Size: 8},
		{Name: "mem_total", Kind: pbio.Unsigned, Size: 8},
		{Name: "net_rx", Kind: pbio.Unsigned, Size: 8},
		{Name: "net_tx", Kind: pbio.Unsigned, Size: 8},
		{Name: "healthy", Kind: pbio.Boolean},
	})
	if err != nil {
		b.Fatal(err)
	}
	v1, err = pbio.NewFormat("host_stats", []pbio.Field{
		{Name: "node_id", Kind: pbio.Integer, Size: 4},
		{Name: "timestamp", Kind: pbio.Unsigned, Size: 8},
		{Name: "cpu_load", Kind: pbio.Float, Size: 8},
		{Name: "mem_used", Kind: pbio.Unsigned, Size: 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	return v2, v1
}

func spliceBenchMessage(b *testing.B, f *pbio.Format) []byte {
	b.Helper()
	return pbio.EncodeRecord(pbio.NewRecord(f).
		MustSet("timestamp", pbio.Uint(1722902400)).
		MustSet("node_id", pbio.Int(17)).
		MustSet("cpu_load", pbio.Float64(0.73)).
		MustSet("mem_used", pbio.Uint(6<<30)).
		MustSet("mem_total", pbio.Uint(16<<30)).
		MustSet("net_rx", pbio.Uint(1<<20)).
		MustSet("net_tx", pbio.Uint(2<<20)).
		MustSet("healthy", pbio.Bool(true)))
}

// BenchmarkDeliverEncodedSplice is the tentpole A/B: encoded delivery on the
// byte-level splice lane versus the record lane (WithSpliceDisabled), for an
// identity match and for a reordering/dropping conversion. The handler is a
// byte consumer in all variants, so the record lane pays its real cost
// (decode + convert + re-encode) and the splice lane its real cost
// (validate + memcpy).
func BenchmarkDeliverEncodedSplice(b *testing.B) {
	v2, v1 := spliceBenchFormats(b)
	data := spliceBenchMessage(b, v2)

	for _, tc := range []struct {
		name string
		dst  *pbio.Format
		opts []MorpherOption
	}{
		{"identity/record", v2, []MorpherOption{WithSpliceDisabled()}},
		{"identity/splice", v2, nil},
		{"convert/record", v1, []MorpherOption{WithSpliceDisabled()}},
		{"convert/splice", v1, nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := NewMorpher(DefaultThresholds, tc.opts...)
			if err := m.RegisterFormatEncoded(tc.dst, func([]byte, *pbio.Format) error { return nil }); err != nil {
				b.Fatal(err)
			}
			if err := m.DeliverEncoded(data, v2); err != nil { // warm the decision cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.DeliverEncoded(data, v2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
