package core

import (
	"fmt"

	"repro/internal/pbio"
)

// Converter is a compiled name-wise conversion plan between two formats. It
// implements lines 26–29 of Algorithm 2: fields of the target that the
// source cannot supply are filled with the target's declared defaults (or
// zero values), and source fields absent from the target are dropped.
// Because matching is by name, a Converter also absorbs pure reorderings
// and nesting-preserving renames of width (sizes may differ; values are
// coerced).
//
// Building the plan costs one walk over both formats; converting a record
// is then a flat interpretation of precomputed steps — the same
// compile-once structure PBIO gets from generated code.
type Converter struct {
	from, to *pbio.Format
	steps    []convStep
}

type convMode uint8

const (
	convFill convMode = iota // no source: default or zero value
	convCopyScalar
	convCopyString
	convComplex // recurse with sub-plan
	convListScalar
	convListString
	convListComplex
)

type convStep struct {
	dstIdx int
	srcIdx int
	mode   convMode
	sub    *Converter // convComplex, convListComplex
	fill   pbio.Value // convFill with a declared default
}

// NewConverter builds the conversion plan from → to.
func NewConverter(from, to *pbio.Format) *Converter {
	c := &Converter{from: from, to: to}
	for j := 0; j < to.NumFields(); j++ {
		dst := to.Field(j)
		step := convStep{dstIdx: j, srcIdx: -1, mode: convFill}
		if !dst.Default.IsZero() {
			step.fill = dst.Default
		}
		if i := from.Lookup(dst.Name); i >= 0 {
			src := from.Field(i)
			if mode, sub, ok := planField(src, dst); ok {
				step.srcIdx = i
				step.mode = mode
				step.sub = sub
			}
		}
		c.steps = append(c.steps, step)
	}
	return c
}

func planField(src, dst *pbio.Field) (convMode, *Converter, bool) {
	switch dst.Kind {
	case pbio.Complex:
		if src.Kind != pbio.Complex {
			return 0, nil, false
		}
		return convComplex, NewConverter(src.Sub, dst.Sub), true
	case pbio.List:
		if src.Kind != pbio.List {
			return 0, nil, false
		}
		return planListElem(src.Elem, dst.Elem)
	case pbio.String:
		if src.Kind != pbio.String {
			return 0, nil, false
		}
		return convCopyString, nil, true
	default: // numeric basic
		if !src.Kind.IsBasic() || src.Kind == pbio.String {
			return 0, nil, false
		}
		return convCopyScalar, nil, true
	}
}

func planListElem(src, dst *pbio.Field) (convMode, *Converter, bool) {
	switch dst.Kind {
	case pbio.Complex:
		if src.Kind != pbio.Complex {
			return 0, nil, false
		}
		return convListComplex, NewConverter(src.Sub, dst.Sub), true
	case pbio.String:
		if src.Kind != pbio.String {
			return 0, nil, false
		}
		return convListString, nil, true
	case pbio.List:
		// Lists of lists are excluded by pbio format validation.
		return 0, nil, false
	default:
		if !src.Kind.IsBasic() || src.Kind == pbio.String {
			return 0, nil, false
		}
		return convListScalar, nil, true
	}
}

// From returns the plan's source format.
func (c *Converter) From() *pbio.Format { return c.from }

// To returns the plan's target format.
func (c *Converter) To() *pbio.Format { return c.to }

// Dropped returns the names of source fields the plan discards (present in
// From, absent or incompatible in To). Useful for diagnostics.
func (c *Converter) Dropped() []string {
	used := make(map[int]bool, len(c.steps))
	for _, s := range c.steps {
		if s.srcIdx >= 0 {
			used[s.srcIdx] = true
		}
	}
	var dropped []string
	for i := 0; i < c.from.NumFields(); i++ {
		if !used[i] {
			dropped = append(dropped, c.from.Field(i).Name)
		}
	}
	return dropped
}

// Defaulted returns the names of target fields the plan fills rather than
// copies.
func (c *Converter) Defaulted() []string {
	var names []string
	for _, s := range c.steps {
		if s.mode == convFill {
			names = append(names, c.to.Field(s.dstIdx).Name)
		}
	}
	return names
}

// Convert produces a new record of the target format from rec, which must
// have the plan's source format.
func (c *Converter) Convert(rec *pbio.Record) (*pbio.Record, error) {
	if !rec.Format().SameStructure(c.from) {
		return nil, fmt.Errorf("core: converter expects format %q (%016x), got %q (%016x)",
			c.from.Name(), c.from.Fingerprint(), rec.Format().Name(), rec.Format().Fingerprint())
	}
	return c.convert(rec)
}

func (c *Converter) convert(rec *pbio.Record) (*pbio.Record, error) {
	out := pbio.NewRecord(c.to)
	for _, s := range c.steps {
		switch s.mode {
		case convFill:
			if !s.fill.IsZero() {
				if err := out.SetIndex(s.dstIdx, s.fill); err != nil {
					return nil, err
				}
			}
		case convCopyScalar, convCopyString:
			if err := out.SetIndex(s.dstIdx, rec.GetIndex(s.srcIdx)); err != nil {
				return nil, err
			}
		case convComplex:
			sub, err := s.sub.convert(rec.GetIndex(s.srcIdx).Record())
			if err != nil {
				return nil, err
			}
			if err := out.SetIndex(s.dstIdx, pbio.RecordOf(sub)); err != nil {
				return nil, err
			}
		case convListScalar, convListString:
			src := rec.GetIndex(s.srcIdx).List()
			elems := make([]pbio.Value, len(src))
			copy(elems, src)
			if err := out.SetIndex(s.dstIdx, pbio.ListOf(elems)); err != nil {
				return nil, err
			}
		case convListComplex:
			src := rec.GetIndex(s.srcIdx).List()
			elems := make([]pbio.Value, len(src))
			for i, e := range src {
				sub, err := s.sub.convert(e.Record())
				if err != nil {
					return nil, err
				}
				elems[i] = pbio.RecordOf(sub)
			}
			if err := out.SetIndex(s.dstIdx, pbio.ListOf(elems)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ConvertByName is a one-shot NewConverter + Convert for callers that do not
// reuse the plan.
func ConvertByName(rec *pbio.Record, to *pbio.Format) (*pbio.Record, error) {
	return NewConverter(rec.Format(), to).Convert(rec)
}
