package core

import (
	"reflect"
	"testing"

	"repro/internal/pbio"
)

func TestConverterFillDropReorder(t *testing.T) {
	from := fmtOrDie(t, "m", []pbio.Field{
		bf("keep", pbio.Integer),
		bf("dropme", pbio.String),
		bf("num", pbio.Integer),
	})
	to := fmtOrDie(t, "m", []pbio.Field{
		{Name: "num", Kind: pbio.Float}, // reordered + widened
		bf("keep", pbio.Integer),
		{Name: "added", Kind: pbio.Integer, Default: pbio.Int(42)},
		bf("added_nodefault", pbio.String),
	})
	c := NewConverter(from, to)
	if got := c.Dropped(); !reflect.DeepEqual(got, []string{"dropme"}) {
		t.Errorf("Dropped = %v", got)
	}
	if got := c.Defaulted(); !reflect.DeepEqual(got, []string{"added", "added_nodefault"}) {
		t.Errorf("Defaulted = %v", got)
	}

	in := pbio.NewRecord(from).
		MustSet("keep", pbio.Int(7)).
		MustSet("dropme", pbio.Str("gone")).
		MustSet("num", pbio.Int(3))
	out, err := c.Convert(in)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Get("keep"); v.Int64() != 7 {
		t.Errorf("keep = %v", v)
	}
	if v, _ := out.Get("num"); v.Kind() != pbio.Float || v.Float64() != 3 {
		t.Errorf("num = %v, want float 3", v)
	}
	if v, _ := out.Get("added"); v.Int64() != 42 {
		t.Errorf("added = %v, want default 42", v)
	}
	if v, _ := out.Get("added_nodefault"); v.Strval() != "" {
		t.Errorf("added_nodefault = %v, want zero value", v)
	}
}

func TestConverterNestedAndLists(t *testing.T) {
	innerFrom := fmtOrDie(t, "inner", []pbio.Field{bf("x", pbio.Integer), bf("extra", pbio.Integer)})
	innerTo := fmtOrDie(t, "inner", []pbio.Field{bf("x", pbio.Integer), {Name: "y", Kind: pbio.Integer, Default: pbio.Int(-1)}})
	from := fmtOrDie(t, "m", []pbio.Field{
		{Name: "sub", Kind: pbio.Complex, Sub: innerFrom},
		{Name: "subs", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: innerFrom}},
		{Name: "nums", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Integer}},
		{Name: "names", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.String}},
	})
	to := fmtOrDie(t, "m", []pbio.Field{
		{Name: "sub", Kind: pbio.Complex, Sub: innerTo},
		{Name: "subs", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: innerTo}},
		{Name: "nums", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Float}},
		{Name: "names", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.String}},
	})

	mkInner := func(x int64) pbio.Value {
		return pbio.RecordOf(pbio.NewRecord(innerFrom).MustSet("x", pbio.Int(x)).MustSet("extra", pbio.Int(99)))
	}
	in := pbio.NewRecord(from).
		MustSet("sub", mkInner(1)).
		MustSet("subs", pbio.ListOf([]pbio.Value{mkInner(2), mkInner(3)})).
		MustSet("nums", pbio.ListOf([]pbio.Value{pbio.Int(10), pbio.Int(20)})).
		MustSet("names", pbio.ListOf([]pbio.Value{pbio.Str("a")}))

	out, err := ConvertByName(in, to)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := out.Get("sub")
	if got := sub.Record().GetIndex(0).Int64(); got != 1 {
		t.Errorf("sub.x = %d", got)
	}
	if got := sub.Record().GetIndex(1).Int64(); got != -1 {
		t.Errorf("sub.y default = %d, want -1", got)
	}
	subs, _ := out.Get("subs")
	if subs.Len() != 2 || subs.List()[1].Record().GetIndex(0).Int64() != 3 {
		t.Errorf("subs = %v", subs)
	}
	nums, _ := out.Get("nums")
	if nums.Len() != 2 || nums.List()[0].Kind() != pbio.Float || nums.List()[1].Float64() != 20 {
		t.Errorf("nums = %v (elements must be coerced to float)", nums)
	}
	names, _ := out.Get("names")
	if names.Len() != 1 || names.List()[0].Strval() != "a" {
		t.Errorf("names = %v", names)
	}
}

func TestConverterIncompatibleFieldsBecomeFills(t *testing.T) {
	from := fmtOrDie(t, "m", []pbio.Field{
		bf("a", pbio.String), // string cannot fill numeric "a"
		bf("b", pbio.Integer),
	})
	to := fmtOrDie(t, "m", []pbio.Field{
		{Name: "a", Kind: pbio.Integer, Default: pbio.Int(5)},
		bf("b", pbio.Integer),
	})
	c := NewConverter(from, to)
	in := pbio.NewRecord(from).MustSet("a", pbio.Str("nope")).MustSet("b", pbio.Int(2))
	out, err := c.Convert(in)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Get("a"); v.Int64() != 5 {
		t.Errorf("incompatible field must use default: a = %v", v)
	}
	if got := c.Dropped(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Dropped = %v", got)
	}
}

func TestConverterListShapeMismatch(t *testing.T) {
	from := fmtOrDie(t, "m", []pbio.Field{bf("l", pbio.Integer)})
	to := fmtOrDie(t, "m", []pbio.Field{{Name: "l", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Integer}}})
	out, err := ConvertByName(pbio.NewRecord(from).MustSet("l", pbio.Int(9)), to)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Get("l"); v.Kind() != pbio.List || v.Len() != 0 {
		t.Errorf("scalar→list must fill empty list, got %v", v)
	}
}

func TestConvertWrongInputFormat(t *testing.T) {
	a := fmtOrDie(t, "a", []pbio.Field{bf("x", pbio.Integer)})
	b := fmtOrDie(t, "b", []pbio.Field{bf("x", pbio.Integer)})
	c := NewConverter(a, b)
	if _, err := c.Convert(pbio.NewRecord(b)); err == nil {
		t.Error("Convert must reject records of the wrong source format")
	}
	if c.From() != a || c.To() != b {
		t.Error("accessors wrong")
	}
}

func TestConverterIsolation(t *testing.T) {
	inner := fmtOrDie(t, "inner", []pbio.Field{bf("x", pbio.Integer)})
	f := fmtOrDie(t, "m", []pbio.Field{
		{Name: "subs", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: inner}},
	})
	in := pbio.NewRecord(f)
	sub := pbio.NewRecord(inner).MustSet("x", pbio.Int(1))
	in.MustSet("subs", pbio.ListOf([]pbio.Value{pbio.RecordOf(sub)}))

	out, err := ConvertByName(in, f)
	if err != nil {
		t.Fatal(err)
	}
	sub.MustSet("x", pbio.Int(99))
	subs, _ := out.Get("subs")
	if subs.List()[0].Record().GetIndex(0).Int64() != 1 {
		t.Error("converted record aliases source storage")
	}
}
