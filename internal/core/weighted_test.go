package core

import (
	"testing"
	"testing/quick"

	"repro/internal/pbio"
)

func TestWeightedReducesToClassicWithUnitWeights(t *testing.T) {
	v1, v2 := echoV1V2(t)
	pairs := [][2]*pbio.Format{{v1, v2}, {v2, v1}, {v1, v1}}
	for _, p := range pairs {
		if got, want := WeightedDiff(p[0], p[1], UnitWeigher), float64(Diff(p[0], p[1])); got != want {
			t.Errorf("WeightedDiff(unit) = %g, Diff = %g", got, want)
		}
		if got, want := WeightedMismatchRatio(p[0], p[1], nil), MismatchRatio(p[0], p[1]); got != want {
			t.Errorf("WeightedMismatchRatio(nil) = %g, MismatchRatio = %g", got, want)
		}
	}
	if got, want := WeightedFormatWeight(v1, nil), float64(v1.Weight()); got != want {
		t.Errorf("WeightedFormatWeight = %g, Weight = %g", got, want)
	}
}

// TestQuickWeightedUnitEquivalence: the equivalence holds for arbitrary
// random pairs drawn from a family of formats.
func TestQuickWeightedUnitEquivalence(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	kinds := []pbio.Kind{pbio.Integer, pbio.Float, pbio.String, pbio.Boolean}
	build := func(mask uint8, kindSel uint8) *pbio.Format {
		var fields []pbio.Field
		for i, n := range names {
			if mask&(1<<i) == 0 {
				continue
			}
			fields = append(fields, pbio.Field{Name: n, Kind: kinds[int(kindSel>>(2*i))%len(kinds)]})
		}
		if len(fields) == 0 {
			fields = append(fields, pbio.Field{Name: "z", Kind: pbio.Integer})
		}
		f, err := pbio.NewFormat("m", fields)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	prop := func(m1, k1, m2, k2 uint8) bool {
		f1, f2 := build(m1, k1), build(m2, k2)
		return WeightedDiff(f1, f2, UnitWeigher) == float64(Diff(f1, f2)) &&
			WeightedMismatchRatio(f1, f2, UnitWeigher) == MismatchRatio(f1, f2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPaths(t *testing.T) {
	inner := fmtOrDie(t, "inner", []pbio.Field{bf("deep", pbio.Integer)})
	f := fmtOrDie(t, "m", []pbio.Field{
		bf("top", pbio.Integer),
		{Name: "sub", Kind: pbio.Complex, Sub: inner},
		{Name: "list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: inner}},
	})
	var paths []string
	WeightedFormatWeight(f, func(path string, _ *pbio.Field) float64 {
		paths = append(paths, path)
		return 1
	})
	want := map[string]bool{"top": true, "sub.deep": true, "list.deep": true}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected path %q", p)
		}
	}
}

// TestWeightedImportanceFlipsDecision: a heavily weighted critical field
// vetoes a match that unweighted counting would accept, and zero weights
// make optional fields free to drop.
func TestWeightedImportanceFlipsDecision(t *testing.T) {
	incoming := fmtOrDie(t, "m", []pbio.Field{
		bf("checksum", pbio.String),
		bf("note1", pbio.String),
		bf("note2", pbio.String),
	})
	target := fmtOrDie(t, "m", []pbio.Field{
		bf("note1", pbio.String),
		bf("note2", pbio.String),
	})

	// Unweighted: diff = 1 (checksum dropped), easily within thresholds.
	if _, ok := MaxMatch([]*pbio.Format{incoming}, []*pbio.Format{target}, DefaultThresholds); !ok {
		t.Fatal("unweighted match must succeed")
	}

	// Weighted: dropping the checksum is intolerable.
	weigher := func(path string, _ *pbio.Field) float64 {
		if path == "checksum" {
			return 100
		}
		return 1
	}
	wth := WeightedThresholds{Diff: 8, Mismatch: 0.5}
	if _, ok := MaxMatchWeighted([]*pbio.Format{incoming}, []*pbio.Format{target}, wth, weigher); ok {
		t.Error("weighted match must refuse to drop the critical field")
	}

	// Zero-weight fields are fully optional: even a tiny Diff budget admits
	// dropping them.
	optional := func(path string, _ *pbio.Field) float64 {
		if path == "checksum" {
			return 0
		}
		return 1
	}
	m, ok := MaxMatchWeighted([]*pbio.Format{incoming}, []*pbio.Format{target},
		WeightedThresholds{Diff: 0, Mismatch: 0}, optional)
	if !ok || !m.IsPerfect() {
		t.Errorf("zero-weighted drop must be a perfect match: ok=%v m=%+v", ok, m)
	}
}

func TestWeightedTieBreakPrefersLeastMismatch(t *testing.T) {
	target := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer)})
	full := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer), bf("e", pbio.Integer)})
	partial := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("e", pbio.Integer)})

	m, ok := MaxMatchWeighted([]*pbio.Format{partial, full}, []*pbio.Format{target},
		WeightedThresholds{Diff: 5, Mismatch: 1}, nil)
	if !ok || m.From != full {
		t.Errorf("least weighted mismatch must win: got %+v", m)
	}
}

func TestMorpherWithWeigher(t *testing.T) {
	oldFmt := fmtOrDie(t, "Quote", []pbio.Field{bf("symbol", pbio.String), bf("price", pbio.Float)})
	newFmt := fmtOrDie(t, "Quote", []pbio.Field{bf("symbol", pbio.String), bf("price", pbio.Float), bf("audit", pbio.String)})

	m := NewMorpher(DefaultThresholds)
	delivered := 0
	if err := m.RegisterFormat(oldFmt, func(*pbio.Record) error { delivered++; return nil }); err != nil {
		t.Fatal(err)
	}
	rec := pbio.NewRecord(newFmt).MustSet("symbol", pbio.Str("A"))

	// Unweighted: the audit field drops silently.
	if err := m.Deliver(rec); err != nil {
		t.Fatalf("unweighted delivery: %v", err)
	}

	// With the audit trail marked critical, the same message is rejected.
	m.SetWeigher(func(path string, _ *pbio.Field) float64 {
		if path == "audit" {
			return 1000
		}
		return 1
	})
	if err := m.Deliver(rec); err == nil {
		t.Fatal("weighted morpher must reject dropping the audit field")
	}

	// Clearing the weigher restores the old behaviour (and invalidates the
	// cached rejection).
	m.SetWeigher(nil)
	if err := m.Deliver(rec); err != nil {
		t.Fatalf("after clearing weigher: %v", err)
	}
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
}
