package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ecode"
	"repro/internal/pbio"
)

// Parameter names a transformation's source text uses, following the
// paper's Figure 5: "new" is the incoming (newer-format) record, "old" the
// produced (older-format) record.
const (
	SrcParam = "new"
	DstParam = "old"
)

// Xform associates a snippet of transformation code with a format: it
// declares that a message of format From can be converted into format To by
// running Code (ecode source with parameters "new" and "old"). Senders
// attach Xforms to their new formats; the meta-data travels out-of-band
// with the format description, and receivers compile it on demand.
type Xform struct {
	From *pbio.Format
	To   *pbio.Format
	Code string
}

// Validate checks the Xform is structurally complete and that its code
// compiles against its formats. Receivers call this before trusting
// network-supplied transformation meta-data.
func (x *Xform) Validate() error {
	if x.From == nil || x.To == nil {
		return errors.New("core: transform needs both From and To formats")
	}
	_, err := x.compile()
	return err
}

// compile builds the transform's bytecode program. This is the morphing
// analog of the paper's dynamic code generation step (Algorithm 2 line 22);
// the Morpher invokes it at most once per cached decision.
func (x *Xform) compile() (*ecode.Program, error) {
	return ecode.Compile(x.Code,
		ecode.Param{Name: SrcParam, Format: x.From},
		ecode.Param{Name: DstParam, Format: x.To})
}

// EncodeXform serializes a transform (format blobs + code) for out-of-band
// transport alongside its format meta-data.
func EncodeXform(x *Xform) []byte {
	fromBlob := pbio.EncodeFormat(x.From)
	toBlob := pbio.EncodeFormat(x.To)
	out := make([]byte, 0, len(fromBlob)+len(toBlob)+len(x.Code)+16)
	out = binary.AppendUvarint(out, uint64(len(fromBlob)))
	out = append(out, fromBlob...)
	out = binary.AppendUvarint(out, uint64(len(toBlob)))
	out = append(out, toBlob...)
	out = binary.AppendUvarint(out, uint64(len(x.Code)))
	out = append(out, x.Code...)
	return out
}

// DecodeXform reconstructs a transform from EncodeXform output.
func DecodeXform(blob []byte) (*Xform, error) {
	var x Xform
	rest := blob
	next := func() ([]byte, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return nil, errors.New("core: malformed transform blob")
		}
		chunk := rest[used : used+int(n)]
		rest = rest[used+int(n):]
		return chunk, nil
	}
	fromBlob, err := next()
	if err != nil {
		return nil, err
	}
	if x.From, err = pbio.DecodeFormat(fromBlob); err != nil {
		return nil, fmt.Errorf("core: transform From format: %w", err)
	}
	toBlob, err := next()
	if err != nil {
		return nil, err
	}
	if x.To, err = pbio.DecodeFormat(toBlob); err != nil {
		return nil, fmt.Errorf("core: transform To format: %w", err)
	}
	code, err := next()
	if err != nil {
		return nil, err
	}
	x.Code = string(code)
	if len(rest) != 0 {
		return nil, errors.New("core: trailing bytes in transform blob")
	}
	return &x, nil
}
