package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ecode"
	"repro/internal/obs"
	"repro/internal/pbio"
	"repro/internal/trace"
)

// Handler consumes a delivered record. The record's format is always one the
// handler's owner registered.
type Handler func(*pbio.Record) error

// EncodedHandler consumes a delivered message in its encoded form: a valid
// enveloped message (fingerprint + payload) of the registered format f.
// Handlers that operate on bytes — spools, relays, fan-out servers — skip
// record materialization entirely on the splice fast lane.
//
// The data slice may alias a transport-owned (pooled) buffer; it is valid
// only for the duration of the call and must be copied if retained.
type EncodedHandler func(data []byte, f *pbio.Format) error

// Morpher errors.
var (
	// ErrRejected is returned when no registered format matches an incoming
	// message within the thresholds and no default handler is installed
	// (Algorithm 2 line 18: "Reject this message").
	ErrRejected = errors.New("core: message rejected: no matching format")

	// ErrBadTransform is wrapped when network-supplied transformation code
	// fails to compile against its declared formats.
	ErrBadTransform = errors.New("core: transformation does not compile")
)

// Stats counts Morpher activity. Snapshots taken by Stats read the
// sub-counters first and Delivered last; because every delivery increments
// Delivered before any sub-counter, a snapshot always satisfies
// Delivered ≥ CacheHits, Delivered ≥ Rejected, and so on — counters never
// appear to run ahead of the deliveries that caused them, even under
// concurrent load.
type Stats struct {
	Delivered    uint64 // messages processed
	CacheHits    uint64 // messages whose format decision was already cached
	Compiled     uint64 // transformation programs compiled (cold path)
	Transformed  uint64 // messages that ran ≥1 transformation step
	Converted    uint64 // messages that needed name-wise fill/drop conversion
	Rejected     uint64 // messages with no acceptable match
	SpliceHits   uint64 // accepted deliveries completed on the encoded (byte-level) lane
	SpliceMisses uint64 // accepted deliveries that materialized a Record
}

// String renders the snapshot as one log-friendly line.
func (s Stats) String() string {
	return fmt.Sprintf("delivered=%d cache_hits=%d compiled=%d transformed=%d converted=%d rejected=%d splice_hits=%d splice_misses=%d",
		s.Delivered, s.CacheHits, s.Compiled, s.Transformed, s.Converted, s.Rejected, s.SpliceHits, s.SpliceMisses)
}

// Morpher is the receiver-side morphing engine (the paper's Algorithm 2).
//
// Readers register the formats they understand together with handlers;
// format meta-data arriving from the network contributes transformations
// (AddTransform). When a message arrives in an unknown format, the Morpher
// runs MaxMatch over the formats the message can be transformed into and the
// registered formats, compiles the needed transformation chain, caches the
// whole decision under the incoming fingerprint, and delivers. Subsequent
// messages of that format take the cached fast path.
type Morpher struct {
	th       Thresholds
	noSplice bool

	mu             sync.RWMutex
	weigher        Weigher
	regs           []*registration
	byFP           map[uint64]*registration
	xforms         map[uint64][]*Xform // outgoing edges keyed by From fingerprint
	cache          map[uint64]*decision
	defaultHandler Handler

	// Counters are obs.Counters even without a registry (private, via
	// newPrivateCounters), so the hot path is identical whether or not
	// observability is enabled. The histograms and reg are nil unless
	// WithObs attached a registry; every use is behind a nil check.
	c           morphCounters
	reg         *obs.Registry
	hotHist     *obs.Histogram // sampled cached-path delivery latency
	coldHist    *obs.Histogram // decision-build latency (once per format)
	compileHist *obs.Histogram // per-transform compile latency

	// tracer is nil unless WithTracer attached one; sampled Ctx deliveries
	// then record decision/lane/step/handler spans.
	tracer *trace.Tracer

	// xsource is nil unless WithTransformSource attached one; the decision
	// build consults it before rejecting an unmatched format. xfresh is its
	// cache-bypassing second chance (WithFreshTransformSource), consulted
	// only when xsource still left the format unroutable.
	xsource TransformSource
	xfresh  TransformSource
}

// morphCounters are the activity counters of Stats.
type morphCounters struct {
	delivered, cacheHits, compiled, transformed, converted, rejected *obs.Counter
	spliceHits, spliceMisses                                         *obs.Counter
}

func newPrivateCounters() morphCounters {
	return morphCounters{
		delivered:    &obs.Counter{},
		cacheHits:    &obs.Counter{},
		compiled:     &obs.Counter{},
		transformed:  &obs.Counter{},
		converted:    &obs.Counter{},
		rejected:     &obs.Counter{},
		spliceHits:   &obs.Counter{},
		spliceMisses: &obs.Counter{},
	}
}

// hotSampleMask: the cached delivery path records its latency once every
// hotSampleMask+1 deliveries, keeping the instrumented hot path within
// noise of the uninstrumented one — the sampling decision reuses the
// delivered counter, adding no atomics.
const hotSampleMask = 255

type registration struct {
	format     *pbio.Format
	handler    Handler
	encHandler EncodedHandler
}

// deliverRecord invokes the registration's handler with a boxed record,
// encoding it on demand when only an encoded handler is registered.
func (r *registration) deliverRecord(rec *pbio.Record) error {
	if r.handler != nil {
		return r.handler(rec)
	}
	return r.encHandler(pbio.EncodeRecord(rec), r.format)
}

// deliverEncoded invokes the registration's handler with an enveloped
// message of the registered format, decoding lazily when only a boxed
// handler is registered.
func (r *registration) deliverEncoded(data []byte) error {
	if r.encHandler != nil {
		return r.encHandler(data, r.format)
	}
	rec, err := pbio.DecodeRecord(data, r.format)
	if err != nil {
		return err
	}
	return r.handler(rec)
}

// decision is the cached outcome of the expensive path of Algorithm 2 for
// one incoming format fingerprint.
type decision struct {
	reject bool
	steps  []*ecode.Program // transformation chain, in application order
	dsts   []*pbio.Format   // destination format of each step
	conv   *Converter       // name-wise fill/drop; nil when structures align
	reg    *registration

	// Byte-level fast lane (splice.go). identity marks a structure-identical
	// match (no steps, no conv); passLen is the exact enveloped length of an
	// identity message when the format is fixed-stride (0 = not applicable),
	// enabling zero-copy pass-through; splice is the compiled byte-level
	// conversion when the whole plan reduces to copies and fills.
	identity bool
	passLen  int
	splice   *spliceProgram
}

// finalizeFastLane derives the decision's byte-lane fields once, at build
// time. noSplice (WithSpliceDisabled) keeps the record lane authoritative,
// for A/B benchmarking and as an escape hatch.
func (d *decision) finalizeFastLane(noSplice bool) {
	d.identity = !d.reject && len(d.steps) == 0 && d.conv == nil
	if noSplice || d.reject {
		return
	}
	if d.identity {
		if l := d.reg.format.Layout(); l.Fixed() {
			// A fixed-stride payload of the right length is fully valid, so
			// identity deliveries can forward the incoming bytes untouched.
			d.passLen = pbio.EnvelopeSize + l.Size()
		}
		return
	}
	if len(d.steps) == 0 && d.conv != nil {
		if sp, ok := compileSplice(d.conv); ok {
			d.splice = sp
		}
	}
}

// MorpherOption configures a Morpher at construction time.
type MorpherOption func(*Morpher)

// WithObs attaches an observability registry: the engine's counters become
// the registry's "core.*" counters, cold decision builds are traced into
// the registry's decision ring, and hot/cold latency histograms are
// recorded. A nil registry is valid and leaves observability disabled.
func WithObs(reg *obs.Registry) MorpherOption {
	return func(m *Morpher) { m.reg = reg }
}

// WithSpliceDisabled turns the byte-level fast lane off: every delivery goes
// through the record lane, as before the splice optimization. Exists as an
// escape hatch and for A/B measurement (morphbench's pipeline experiment).
func WithSpliceDisabled() MorpherOption {
	return func(m *Morpher) { m.noSplice = true }
}

// WithTracer attaches a tracer: DeliverCtx/DeliverEncodedCtx calls carrying
// a sampled trace context record per-stage spans (morph decision, lane
// choice, each transform step, conversion, handler invocation). A nil
// tracer is valid and leaves tracing disabled; untraced deliveries pay one
// branch per hook either way.
func WithTracer(t *trace.Tracer) MorpherOption {
	return func(m *Morpher) { m.tracer = t }
}

// TransformSource supplies out-of-band transformation meta-data for an
// incoming format no local transform chains off: given the format's
// fingerprint, it returns any transforms known elsewhere (the format
// registry) whose chains might reach a registered format, or nil. It is
// consulted on the cold decision path only — once per unknown fingerprint,
// before Algorithm 2 line 18 rejects the message — so it may block on I/O;
// the outcome (including the reject) is cached like any other decision.
type TransformSource func(fp uint64) []*Xform

// WithTransformSource attaches an out-of-band transform source (a registry
// client): when MaxMatch finds no acceptable pair among locally known
// formats, the source's transforms for the incoming fingerprint are merged
// into the graph and the match is retried before rejecting. A nil source is
// valid and leaves the engine purely local.
func WithTransformSource(src TransformSource) MorpherOption {
	return func(m *Morpher) { m.xsource = src }
}

// WithFreshTransformSource attaches a second, cache-bypassing transform
// source, consulted only when the primary source (WithTransformSource) still
// left the incoming format unroutable — the last step before a reject is
// cached. The distinction matters because format fingerprints are structural:
// two generations of an evolving protocol can collide on one fingerprint,
// and a later registration then replaces the entry's transform set at the
// daemon while every cached copy (a registry client's LRU, fed by a watch
// stream the data frame can outrun) keeps the old one. A source that
// re-reads the daemon directly closes that window. Like the primary source
// it runs on the cold path only and may block on I/O; a nil source is valid.
func WithFreshTransformSource(src TransformSource) MorpherOption {
	return func(m *Morpher) { m.xfresh = src }
}

// NewMorpher returns a Morpher with the given thresholds. Use
// DefaultThresholds when in doubt; Thresholds{} (all zero) admits only
// perfect matches, as the paper prescribes for strict deployments.
func NewMorpher(th Thresholds, opts ...MorpherOption) *Morpher {
	m := &Morpher{
		th:     th,
		byFP:   make(map[uint64]*registration),
		xforms: make(map[uint64][]*Xform),
		cache:  make(map[uint64]*decision),
	}
	for _, o := range opts {
		o(m)
	}
	if m.reg != nil {
		m.c = morphCounters{
			delivered:    m.reg.Counter("core.delivered"),
			cacheHits:    m.reg.Counter("core.cache_hits"),
			compiled:     m.reg.Counter("core.compiled"),
			transformed:  m.reg.Counter("core.transformed"),
			converted:    m.reg.Counter("core.converted"),
			rejected:     m.reg.Counter("core.rejected"),
			spliceHits:   m.reg.Counter("core.splice_hits"),
			spliceMisses: m.reg.Counter("core.splice_misses"),
		}
		m.hotHist = m.reg.Histogram("core.deliver_hot_ns")
		m.coldHist = m.reg.Histogram("core.decide_cold_ns")
		m.compileHist = m.reg.Histogram("core.compile_ns")
	} else {
		m.c = newPrivateCounters()
	}
	return m
}

// Thresholds returns the matcher's configured thresholds.
func (m *Morpher) Thresholds() Thresholds { return m.th }

// RegisterFormat declares that the reader understands format f and wants
// matching messages delivered to handler. Registering a format with the
// same fingerprint again replaces its handler. Registration order matters
// for ties: earlier formats win equal MaxMatch scores.
func (m *Morpher) RegisterFormat(f *pbio.Format, handler Handler) error {
	if handler == nil {
		return errors.New("core: nil handler")
	}
	return m.register(f, &registration{format: f, handler: handler})
}

// RegisterFormatEncoded is RegisterFormat for byte-level consumers: matching
// messages reach handler as enveloped bytes of format f. Deliveries on the
// splice fast lane never materialize a Record on the way; record-lane
// deliveries (transformation chains, width-changing conversions, Deliver
// with an already-boxed record) encode the result before invoking handler.
// Registering the same fingerprint again replaces the handler in kind.
func (m *Morpher) RegisterFormatEncoded(f *pbio.Format, handler EncodedHandler) error {
	if handler == nil {
		return errors.New("core: nil handler")
	}
	return m.register(f, &registration{format: f, encHandler: handler})
}

func (m *Morpher) register(f *pbio.Format, reg *registration) error {
	if f == nil {
		return errors.New("core: nil format")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.byFP[f.Fingerprint()]; ok {
		existing.handler, existing.encHandler = reg.handler, reg.encHandler
		return nil
	}
	m.regs = append(m.regs, reg)
	m.byFP[f.Fingerprint()] = reg
	m.invalidateLocked()
	return nil
}

// SetWeigher installs field-importance weights for match decisions (the
// paper's §6 future-work extension). When set, the engine decides with
// WeightedDiff/WeightedMismatchRatio against the same thresholds
// (Thresholds.Diff is read as a summed-importance cap). Pass nil to return
// to unweighted matching.
func (m *Morpher) SetWeigher(w Weigher) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.weigher = w
	m.invalidateLocked()
}

// matchLocked runs the configured matcher (weighted or classic) and reduces
// the result to what decision building needs.
func (m *Morpher) matchLocked(f1s, f2s []*pbio.Format) (Match, bool) {
	if m.weigher == nil {
		return MaxMatch(f1s, f2s, m.th)
	}
	wth := WeightedThresholds{Diff: float64(m.th.Diff), Mismatch: m.th.Mismatch}
	wm, ok := MaxMatchWeighted(f1s, f2s, wth, m.weigher)
	if !ok {
		return Match{}, false
	}
	// Preserve exact perfect-match semantics in the reduced form: any
	// positive weighted diff must not round down to "perfect".
	diff := int(wm.Diff)
	if wm.Diff > 0 && diff == 0 {
		diff = 1
	}
	return Match{From: wm.From, To: wm.To, Diff: diff, Mismatch: wm.Mismatch}, true
}

// SetDefaultHandler installs the handler invoked for messages no registered
// format matches. Records reach it in their original incoming format.
func (m *Morpher) SetDefaultHandler(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.defaultHandler = h
	m.invalidateLocked()
}

// AddTransform registers transformation meta-data: an edge From → To in the
// retro-transformation graph (Figure 1). The code is compiled lazily, when
// a decision first needs it; Validate can be called eagerly by transports
// that distrust their peers.
func (m *Morpher) AddTransform(x *Xform) error {
	if x == nil || x.From == nil || x.To == nil {
		return errors.New("core: transform needs From and To formats")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := x.From.Fingerprint()
	for i, existing := range m.xforms[key] {
		if existing.To.Fingerprint() == x.To.Fingerprint() {
			if existing.Code == x.Code {
				return nil // identical refresh: keep cached decisions
			}
			// Refresh by replacing the edge, never by writing through it:
			// Xforms arrive from resolver caches that hand the same pointers
			// to every connection, so a mutation here would race with — and
			// rewrite — another morpher's concurrent compile of the same
			// transform.
			m.xforms[key][i] = x
			m.invalidateLocked()
			return nil
		}
	}
	m.xforms[key] = append(m.xforms[key], x)
	m.invalidateLocked()
	return nil
}

// importTransformsLocked merges externally sourced transforms into the
// graph (AddTransform's dedup, without re-locking), returning how many were
// new or refreshed. Malformed entries are skipped: registry contents must
// not be able to poison the local graph.
func (m *Morpher) importTransformsLocked(xs []*Xform) int {
	added := 0
next:
	for _, x := range xs {
		if x == nil || x.From == nil || x.To == nil {
			continue
		}
		key := x.From.Fingerprint()
		for _, existing := range m.xforms[key] {
			if existing.To.Fingerprint() == x.To.Fingerprint() {
				continue next
			}
		}
		m.xforms[key] = append(m.xforms[key], x)
		added++
	}
	return added
}

// invalidateLocked drops cached decisions; new registrations or transforms
// can change every match.
func (m *Morpher) invalidateLocked() {
	if len(m.cache) > 0 {
		m.cache = make(map[uint64]*decision)
	}
}

// Invalidate drops the cached decision for one incoming fingerprint, so the
// next message of that format re-runs the cold path. Transports hook this to
// metadata-change notifications (a registry watch event): a decision built
// before the metadata landed — in the worst case a reject, which no amount
// of subsequent traffic would otherwise revisit — heals instead of sticking
// for the connection's lifetime. Unknown fingerprints are a no-op.
func (m *Morpher) Invalidate(fp uint64) {
	m.mu.Lock()
	delete(m.cache, fp)
	m.mu.Unlock()
}

// Stats returns a snapshot of the engine's counters. The read order is
// fixed — every sub-counter before Delivered — so the snapshot never tears
// into an impossible state (see the Stats type documentation): a delivery
// increments Delivered first, hence reading Delivered last can only
// over-count it relative to the sub-counters, never under-count.
func (m *Morpher) Stats() Stats {
	s := Stats{
		CacheHits:    m.c.cacheHits.Load(),
		Compiled:     m.c.compiled.Load(),
		Transformed:  m.c.transformed.Load(),
		Converted:    m.c.converted.Load(),
		Rejected:     m.c.rejected.Load(),
		SpliceHits:   m.c.spliceHits.Load(),
		SpliceMisses: m.c.spliceMisses.Load(),
	}
	s.Delivered = m.c.delivered.Load()
	return s
}

// Deliver runs Algorithm 2 on rec: match (cached after the first message of
// a format), transform, fill/drop, and invoke the matched format's handler.
func (m *Morpher) Deliver(rec *pbio.Record) error {
	return m.DeliverCtx(rec, trace.Context{})
}

// DeliverCtx is Deliver with a trace context: when tctx is sampled and a
// tracer is attached, the morph decision, record lane, transform steps and
// handler invocation are recorded as spans of tctx's trace.
func (m *Morpher) DeliverCtx(rec *pbio.Record, tctx trace.Context) error {
	out, d, err := m.morph(rec, tctx)
	if err != nil {
		return err
	}
	if d.reject {
		m.mu.RLock()
		dh := m.defaultHandler
		m.mu.RUnlock()
		if dh != nil {
			return dh(rec)
		}
		return fmt.Errorf("%w: %q (%016x)", ErrRejected, rec.Format().Name(), rec.Format().Fingerprint())
	}
	dv := m.tracer.StartSpan(tctx, trace.StageDeliver)
	err = d.reg.deliverRecord(out)
	dv.EndErr(err)
	return err
}

// Morph converts rec into a registered format without invoking its handler;
// the second result is the matched registered format. Transports that
// deliver typed structs use this, as do the benchmarks.
func (m *Morpher) Morph(rec *pbio.Record) (*pbio.Record, *pbio.Format, error) {
	out, d, err := m.morph(rec, trace.Context{})
	if err != nil {
		return nil, nil, err
	}
	if d.reject {
		return nil, nil, fmt.Errorf("%w: %q (%016x)", ErrRejected, rec.Format().Name(), rec.Format().Fingerprint())
	}
	return out, d.reg.format, nil
}

// morph is the shared delivery pipeline of Deliver and Morph: decide, then
// apply. out is nil when the decision is a reject. When observability is
// enabled, the latency of every hotSampleMask+1-th cached delivery is
// recorded; with it disabled the extra cost is the nil-histogram branch.
func (m *Morpher) morph(rec *pbio.Record, tctx trace.Context) (*pbio.Record, *decision, error) {
	n := m.c.delivered.Inc()
	timed := m.hotHist != nil && n&hotSampleMask == 1
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	ds := m.tracer.StartSpan(tctx, trace.StageMorphDecide)
	d, hit, err := m.decide(rec.Format())
	if ds.Recording() {
		ds.FP = rec.Format().Fingerprint()
		ds.EndErr(err)
	}
	if err != nil {
		return nil, nil, err
	}
	if d.reject {
		m.c.rejected.Inc()
		return nil, d, nil
	}
	m.c.spliceMisses.Inc() // a boxed delivery is by definition a record-lane delivery
	ls := m.tracer.StartSpan(tctx, trace.StageLaneRecord)
	out, err := m.applyDecision(d, rec, ls.Context())
	ls.EndErr(err)
	if err != nil {
		return nil, nil, err
	}
	if timed && hit {
		m.hotHist.ObserveNS(time.Since(t0).Nanoseconds())
	}
	return out, d, nil
}

// DeliverEncoded delivers an enveloped message (whose wire format the
// transport looked up out-of-band) without necessarily decoding it.
//
// The cached decision is consulted first: identity decisions on
// fixed-stride formats pass the incoming bytes straight through (zero
// copies, zero allocations), and decisions whose whole plan compiled to a
// splice program are executed directly []byte → []byte with a single output
// allocation. Both count as core.splice_hits. Everything else — variable
// width formats, transformation chains, width-changing conversions — falls
// back to decode + record lane and counts as core.splice_misses. Boxed
// Handler registrations work on either lane via lazy decode.
func (m *Morpher) DeliverEncoded(data []byte, wire *pbio.Format) error {
	return m.DeliverEncodedCtx(data, wire, trace.Context{})
}

// DeliverEncodedCtx is DeliverEncoded with a trace context: when tctx is
// sampled and a tracer is attached, the morph decision, the lane taken
// (splice or record), transform steps and handler invocation are recorded
// as spans of tctx's trace. With tracing off (nil tracer or unsampled
// context) the only extra cost over DeliverEncoded is a branch per hook —
// the splice lane stays allocation-free.
func (m *Morpher) DeliverEncodedCtx(data []byte, wire *pbio.Format, tctx trace.Context) error {
	fp, err := pbio.PeekFingerprint(data)
	if err != nil {
		return err
	}
	if fp != wire.Fingerprint() {
		return fmt.Errorf("%w: message %016x, format %q is %016x",
			pbio.ErrFingerprint, fp, wire.Name(), wire.Fingerprint())
	}
	n := m.c.delivered.Inc()
	timed := m.hotHist != nil && n&hotSampleMask == 1
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	ds := m.tracer.StartSpan(tctx, trace.StageMorphDecide)
	d, hit, err := m.decide(wire)
	if ds.Recording() {
		ds.FP = fp
		ds.EndErr(err)
	}
	if err != nil {
		return err
	}
	if d.reject {
		m.c.rejected.Inc()
		m.mu.RLock()
		dh := m.defaultHandler
		m.mu.RUnlock()
		if dh == nil {
			return fmt.Errorf("%w: %q (%016x)", ErrRejected, wire.Name(), fp)
		}
		rec, err := pbio.DecodeRecord(data, wire)
		if err != nil {
			return err
		}
		return dh(rec)
	}

	// Byte lane: splice or fixed-stride identity pass-through. Length
	// validation is strict — a short (or long) payload is rejected before a
	// single byte is copied out of it.
	if d.splice != nil {
		ls := m.tracer.StartSpan(tctx, trace.StageLaneSplice)
		out, err := d.splice.run(data)
		if err != nil {
			ls.EndErr(err)
			return err
		}
		m.c.spliceHits.Inc()
		dv := m.tracer.StartSpan(ls.Context(), trace.StageDeliver)
		err = d.reg.deliverEncoded(out)
		dv.EndErr(err)
		ls.EndErr(err)
		if timed && hit {
			m.hotHist.ObserveNS(time.Since(t0).Nanoseconds())
		}
		return err
	}
	if d.passLen != 0 {
		if len(data) != d.passLen {
			return fmt.Errorf("%w: identity lane: %d payload bytes, fixed format %q needs %d",
				pbio.ErrShortMessage, len(data)-pbio.EnvelopeSize, wire.Name(), d.passLen-pbio.EnvelopeSize)
		}
		m.c.spliceHits.Inc()
		ls := m.tracer.StartSpan(tctx, trace.StageLaneSplice)
		dv := m.tracer.StartSpan(ls.Context(), trace.StageDeliver)
		err = d.reg.deliverEncoded(data)
		dv.EndErr(err)
		ls.EndErr(err)
		if timed && hit {
			m.hotHist.ObserveNS(time.Since(t0).Nanoseconds())
		}
		return err
	}

	// Record lane: decode, transform/convert, deliver. Identity decisions
	// on variable-width formats still hand encoded consumers the original
	// bytes — the decode above serves as validation only.
	m.c.spliceMisses.Inc()
	ls := m.tracer.StartSpan(tctx, trace.StageLaneRecord)
	rec, err := pbio.DecodeRecord(data, wire)
	if err != nil {
		ls.EndErr(err)
		return err
	}
	out, err := m.applyDecision(d, rec, ls.Context())
	if err != nil {
		ls.EndErr(err)
		return err
	}
	dv := m.tracer.StartSpan(ls.Context(), trace.StageDeliver)
	if d.identity && d.reg.encHandler != nil {
		err = d.reg.encHandler(data, d.reg.format)
	} else {
		err = d.reg.deliverRecord(out)
	}
	dv.EndErr(err)
	ls.EndErr(err)
	if timed && hit {
		m.hotHist.ObserveNS(time.Since(t0).Nanoseconds())
	}
	return err
}

// applyDecision runs the decision's transformation chain and conversion on
// rec. tctx (the enclosing lane span's context, zero when untraced) parents
// the per-step and conversion spans.
func (m *Morpher) applyDecision(d *decision, rec *pbio.Record, tctx trace.Context) (*pbio.Record, error) {
	cur := rec
	for i, prog := range d.steps {
		xs := m.tracer.StartSpan(tctx, trace.StageXformStep)
		dst := pbio.NewRecord(d.dsts[i])
		if _, err := prog.Run(cur, dst); err != nil {
			xs.EndErr(err)
			return nil, fmt.Errorf("core: transformation step %d (%q→%q): %w",
				i, cur.Format().Name(), d.dsts[i].Name(), err)
		}
		if xs.Recording() {
			xs.N = int64(i)
			xs.FP = d.dsts[i].Fingerprint()
			xs.End()
		}
		cur = dst
	}
	if len(d.steps) > 0 {
		m.c.transformed.Inc()
	}
	if d.conv != nil {
		cs := m.tracer.StartSpan(tctx, trace.StageConvert)
		out, err := d.conv.Convert(cur)
		cs.EndErr(err)
		if err != nil {
			return nil, err
		}
		m.c.converted.Inc()
		cur = out
	}
	return cur, nil
}

// decide returns the cached decision for the incoming format, computing and
// caching it on first sight (the expensive steps 11–27 of Algorithm 2).
// hit reports whether the decision came from the cache.
func (m *Morpher) decide(fm *pbio.Format) (d *decision, hit bool, err error) {
	fp := fm.Fingerprint()
	m.mu.RLock()
	d, ok := m.cache[fp]
	m.mu.RUnlock()
	if ok {
		m.c.cacheHits.Inc()
		return d, true, nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.cache[fp]; ok {
		m.c.cacheHits.Inc()
		return d, true, nil
	}
	var t0 time.Time
	if m.reg != nil {
		t0 = time.Now()
	}
	d, tr, err := m.buildDecisionLocked(fm)
	if m.reg != nil {
		m.coldHist.ObserveNS(time.Since(t0).Nanoseconds())
		tr.Format = fm.Name()
		tr.Fingerprint = fmt.Sprintf("%016x", fp)
		if err != nil {
			tr.Rejected = true
			tr.Reason = err.Error()
		}
		m.reg.RecordDecision(tr)
	}
	if err != nil {
		return nil, false, err
	}
	d.finalizeFastLane(m.noSplice)
	m.cache[fp] = d
	return d, false, nil
}

// buildDecisionLocked runs the expensive path of Algorithm 2 and reports
// what it decided as an obs.Decision trace entry (recorded only when a
// registry is attached; building it is cold-path noise otherwise).
func (m *Morpher) buildDecisionLocked(fm *pbio.Format) (*decision, obs.Decision, error) {
	var tr obs.Decision

	// Fast path: exact structure registered.
	if reg, ok := m.byFP[fm.Fingerprint()]; ok {
		tr.Candidates, tr.Registered = 1, 1
		tr.From, tr.To = fm.Name(), reg.format.Name()
		return &decision{reg: reg}, tr, nil
	}

	// Fr: registered formats with the same name as fm.
	var fr []*pbio.Format
	for _, reg := range m.regs {
		if reg.format.Name() == fm.Name() {
			fr = append(fr, reg.format)
		}
	}
	tr.Candidates, tr.Registered = 1, len(fr)

	// Line 11: try the incoming format alone, accepting only a perfect pair.
	if match, ok := m.matchLocked([]*pbio.Format{fm}, fr); ok && match.IsPerfect() {
		d, err := m.finishDecisionLocked(nil, match, &tr)
		return d, tr, err
	}

	// Line 16: consider everything fm can be transformed into.
	chains := m.reachableLocked(fm)
	ft := make([]*pbio.Format, len(chains))
	for i, ch := range chains {
		ft[i] = ch.format
	}
	tr.Candidates = len(ft)
	match, ok := m.matchLocked(ft, fr)
	for _, src := range []TransformSource{m.xsource, m.xfresh} {
		if ok || src == nil {
			continue
		}
		// Line 16, extended: before rejecting, pull transform meta-data the
		// registry holds for this fingerprint — chains a peer published that
		// never crossed this connection — and retry the match. The second
		// source (WithFreshTransformSource) repeats the pull past the
		// registry client's caches, for the case where the cached entry is a
		// stale copy of a fingerprint a later protocol generation reused.
		xs := src(fm.Fingerprint())
		added := m.importTransformsLocked(xs)
		if added > 0 {
			chains = m.reachableLocked(fm)
			ft = make([]*pbio.Format, len(chains))
			for i, ch := range chains {
				ft[i] = ch.format
			}
			tr.Candidates = len(ft)
			match, ok = m.matchLocked(ft, fr)
		}
	}
	if !ok {
		tr.Rejected = true
		tr.Reason = "no candidate pair within thresholds"
		return &decision{reject: true}, tr, nil
	}

	var path []*Xform
	for _, ch := range chains {
		if ch.format == match.From {
			path = ch.path
			break
		}
	}
	d, err := m.finishDecisionLocked(path, match, &tr)
	return d, tr, err
}

// finishDecisionLocked compiles the chosen chain and builds the fill/drop
// converter if the matched pair is not structure-identical.
func (m *Morpher) finishDecisionLocked(path []*Xform, match Match, tr *obs.Decision) (*decision, error) {
	tr.From, tr.To = match.From.Name(), match.To.Name()
	tr.Diff, tr.Mismatch = match.Diff, match.Mismatch
	tr.ChainLen = len(path)
	d := &decision{reg: m.byFP[match.To.Fingerprint()]}
	if d.reg == nil {
		// match.To always comes from m.regs; this guards internal drift.
		return nil, fmt.Errorf("core: matched format %q is not registered", match.To.Name())
	}
	for _, x := range path {
		var ct0 time.Time
		if m.reg != nil {
			ct0 = time.Now()
		}
		prog, err := x.compile()
		if m.reg != nil {
			ns := time.Since(ct0).Nanoseconds()
			tr.CompileNS += ns
			m.compileHist.ObserveNS(ns)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %q→%q: %v", ErrBadTransform, x.From.Name(), x.To.Name(), err)
		}
		m.c.compiled.Inc()
		d.steps = append(d.steps, prog)
		d.dsts = append(d.dsts, x.To)
	}
	if !match.From.SameStructure(match.To) {
		d.conv = NewConverter(match.From, match.To)
	}
	return d, nil
}

// chain is a format reachable from the incoming one plus the transform path
// that reaches it.
type chain struct {
	format *pbio.Format
	path   []*Xform
}

// maxChainDepth bounds retro-transformation chains; realistic format
// histories are short, and the bound keeps adversarial transform graphs
// from exploding the search.
const maxChainDepth = 8

// reachableLocked returns fm plus every format reachable through registered
// transforms, breadth-first, so the shortest chain to any format is found
// first. The identity chain is first, biasing MaxMatch ties toward
// "no transformation".
func (m *Morpher) reachableLocked(fm *pbio.Format) []chain {
	visited := map[uint64]bool{fm.Fingerprint(): true}
	out := []chain{{format: fm}}
	frontier := out
	for depth := 0; depth < maxChainDepth && len(frontier) > 0; depth++ {
		var next []chain
		for _, ch := range frontier {
			for _, x := range m.xforms[ch.format.Fingerprint()] {
				fp := x.To.Fingerprint()
				if visited[fp] {
					continue
				}
				visited[fp] = true
				path := make([]*Xform, len(ch.path)+1)
				copy(path, ch.path)
				path[len(ch.path)] = x
				nc := chain{format: x.To, path: path}
				out = append(out, nc)
				next = append(next, nc)
			}
		}
		frontier = next
	}
	return out
}

// Explanation describes how the Morpher would treat a format — the
// diagnostic counterpart of decide, for tooling.
type Explanation struct {
	Rejected  bool
	Target    *pbio.Format // registered format messages are delivered as
	ChainLen  int          // transformation steps applied
	Perfect   bool         // no fill/drop needed after the chain
	Defaulted []string     // target fields filled with defaults
	Dropped   []string     // incoming fields discarded
}

// Explain reports the delivery plan for a format without delivering
// anything. It populates the decision cache as a side effect.
func (m *Morpher) Explain(fm *pbio.Format) (Explanation, error) {
	d, _, err := m.decide(fm)
	if err != nil {
		return Explanation{}, err
	}
	if d.reject {
		return Explanation{Rejected: true}, nil
	}
	e := Explanation{
		Target:   d.reg.format,
		ChainLen: len(d.steps),
		Perfect:  d.conv == nil,
	}
	if d.conv != nil {
		e.Defaulted = d.conv.Defaulted()
		e.Dropped = d.conv.Dropped()
	}
	return e, nil
}
