package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ecode"
	"repro/internal/pbio"
)

// Handler consumes a delivered record. The record's format is always one the
// handler's owner registered.
type Handler func(*pbio.Record) error

// Morpher errors.
var (
	// ErrRejected is returned when no registered format matches an incoming
	// message within the thresholds and no default handler is installed
	// (Algorithm 2 line 18: "Reject this message").
	ErrRejected = errors.New("core: message rejected: no matching format")

	// ErrBadTransform is wrapped when network-supplied transformation code
	// fails to compile against its declared formats.
	ErrBadTransform = errors.New("core: transformation does not compile")
)

// Stats counts Morpher activity. Reads are approximate under concurrency.
type Stats struct {
	Delivered   uint64 // messages processed
	CacheHits   uint64 // messages whose format decision was already cached
	Compiled    uint64 // transformation programs compiled (cold path)
	Transformed uint64 // messages that ran ≥1 transformation step
	Converted   uint64 // messages that needed name-wise fill/drop conversion
	Rejected    uint64 // messages with no acceptable match
}

// Morpher is the receiver-side morphing engine (the paper's Algorithm 2).
//
// Readers register the formats they understand together with handlers;
// format meta-data arriving from the network contributes transformations
// (AddTransform). When a message arrives in an unknown format, the Morpher
// runs MaxMatch over the formats the message can be transformed into and the
// registered formats, compiles the needed transformation chain, caches the
// whole decision under the incoming fingerprint, and delivers. Subsequent
// messages of that format take the cached fast path.
type Morpher struct {
	th Thresholds

	mu             sync.RWMutex
	weigher        Weigher
	regs           []*registration
	byFP           map[uint64]*registration
	xforms         map[uint64][]*Xform // outgoing edges keyed by From fingerprint
	cache          map[uint64]*decision
	defaultHandler Handler

	stats struct {
		delivered, cacheHits, compiled, transformed, converted, rejected atomic.Uint64
	}
}

type registration struct {
	format  *pbio.Format
	handler Handler
}

// decision is the cached outcome of the expensive path of Algorithm 2 for
// one incoming format fingerprint.
type decision struct {
	reject bool
	steps  []*ecode.Program // transformation chain, in application order
	dsts   []*pbio.Format   // destination format of each step
	conv   *Converter       // name-wise fill/drop; nil when structures align
	reg    *registration
}

// NewMorpher returns a Morpher with the given thresholds. Use
// DefaultThresholds when in doubt; Thresholds{} (all zero) admits only
// perfect matches, as the paper prescribes for strict deployments.
func NewMorpher(th Thresholds) *Morpher {
	return &Morpher{
		th:     th,
		byFP:   make(map[uint64]*registration),
		xforms: make(map[uint64][]*Xform),
		cache:  make(map[uint64]*decision),
	}
}

// Thresholds returns the matcher's configured thresholds.
func (m *Morpher) Thresholds() Thresholds { return m.th }

// RegisterFormat declares that the reader understands format f and wants
// matching messages delivered to handler. Registering a format with the
// same fingerprint again replaces its handler. Registration order matters
// for ties: earlier formats win equal MaxMatch scores.
func (m *Morpher) RegisterFormat(f *pbio.Format, handler Handler) error {
	if f == nil {
		return errors.New("core: nil format")
	}
	if handler == nil {
		return errors.New("core: nil handler")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.byFP[f.Fingerprint()]; ok {
		existing.handler = handler
		return nil
	}
	reg := &registration{format: f, handler: handler}
	m.regs = append(m.regs, reg)
	m.byFP[f.Fingerprint()] = reg
	m.invalidateLocked()
	return nil
}

// SetWeigher installs field-importance weights for match decisions (the
// paper's §6 future-work extension). When set, the engine decides with
// WeightedDiff/WeightedMismatchRatio against the same thresholds
// (Thresholds.Diff is read as a summed-importance cap). Pass nil to return
// to unweighted matching.
func (m *Morpher) SetWeigher(w Weigher) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.weigher = w
	m.invalidateLocked()
}

// matchLocked runs the configured matcher (weighted or classic) and reduces
// the result to what decision building needs.
func (m *Morpher) matchLocked(f1s, f2s []*pbio.Format) (Match, bool) {
	if m.weigher == nil {
		return MaxMatch(f1s, f2s, m.th)
	}
	wth := WeightedThresholds{Diff: float64(m.th.Diff), Mismatch: m.th.Mismatch}
	wm, ok := MaxMatchWeighted(f1s, f2s, wth, m.weigher)
	if !ok {
		return Match{}, false
	}
	// Preserve exact perfect-match semantics in the reduced form: any
	// positive weighted diff must not round down to "perfect".
	diff := int(wm.Diff)
	if wm.Diff > 0 && diff == 0 {
		diff = 1
	}
	return Match{From: wm.From, To: wm.To, Diff: diff, Mismatch: wm.Mismatch}, true
}

// SetDefaultHandler installs the handler invoked for messages no registered
// format matches. Records reach it in their original incoming format.
func (m *Morpher) SetDefaultHandler(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.defaultHandler = h
	m.invalidateLocked()
}

// AddTransform registers transformation meta-data: an edge From → To in the
// retro-transformation graph (Figure 1). The code is compiled lazily, when
// a decision first needs it; Validate can be called eagerly by transports
// that distrust their peers.
func (m *Morpher) AddTransform(x *Xform) error {
	if x == nil || x.From == nil || x.To == nil {
		return errors.New("core: transform needs From and To formats")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := x.From.Fingerprint()
	for _, existing := range m.xforms[key] {
		if existing.To.Fingerprint() == x.To.Fingerprint() {
			existing.Code = x.Code // refresh
			m.invalidateLocked()
			return nil
		}
	}
	m.xforms[key] = append(m.xforms[key], x)
	m.invalidateLocked()
	return nil
}

// invalidateLocked drops cached decisions; new registrations or transforms
// can change every match.
func (m *Morpher) invalidateLocked() {
	if len(m.cache) > 0 {
		m.cache = make(map[uint64]*decision)
	}
}

// Stats returns a snapshot of the engine's counters.
func (m *Morpher) Stats() Stats {
	return Stats{
		Delivered:   m.stats.delivered.Load(),
		CacheHits:   m.stats.cacheHits.Load(),
		Compiled:    m.stats.compiled.Load(),
		Transformed: m.stats.transformed.Load(),
		Converted:   m.stats.converted.Load(),
		Rejected:    m.stats.rejected.Load(),
	}
}

// Deliver runs Algorithm 2 on rec: match (cached after the first message of
// a format), transform, fill/drop, and invoke the matched format's handler.
func (m *Morpher) Deliver(rec *pbio.Record) error {
	m.stats.delivered.Add(1)
	d, err := m.decide(rec.Format())
	if err != nil {
		return err
	}
	if d.reject {
		m.stats.rejected.Add(1)
		m.mu.RLock()
		dh := m.defaultHandler
		m.mu.RUnlock()
		if dh != nil {
			return dh(rec)
		}
		return fmt.Errorf("%w: %q (%016x)", ErrRejected, rec.Format().Name(), rec.Format().Fingerprint())
	}
	out, err := m.applyDecision(d, rec)
	if err != nil {
		return err
	}
	return d.reg.handler(out)
}

// Morph converts rec into a registered format without invoking its handler;
// the second result is the matched registered format. Transports that
// deliver typed structs use this, as do the benchmarks.
func (m *Morpher) Morph(rec *pbio.Record) (*pbio.Record, *pbio.Format, error) {
	m.stats.delivered.Add(1)
	d, err := m.decide(rec.Format())
	if err != nil {
		return nil, nil, err
	}
	if d.reject {
		m.stats.rejected.Add(1)
		return nil, nil, fmt.Errorf("%w: %q (%016x)", ErrRejected, rec.Format().Name(), rec.Format().Fingerprint())
	}
	out, err := m.applyDecision(d, rec)
	if err != nil {
		return nil, nil, err
	}
	return out, d.reg.format, nil
}

// DeliverEncoded decodes an enveloped message (whose wire format the
// transport looked up out-of-band) and delivers it.
func (m *Morpher) DeliverEncoded(data []byte, wire *pbio.Format) error {
	rec, err := pbio.DecodeRecord(data, wire)
	if err != nil {
		return err
	}
	return m.Deliver(rec)
}

func (m *Morpher) applyDecision(d *decision, rec *pbio.Record) (*pbio.Record, error) {
	cur := rec
	for i, prog := range d.steps {
		dst := pbio.NewRecord(d.dsts[i])
		if _, err := prog.Run(cur, dst); err != nil {
			return nil, fmt.Errorf("core: transformation step %d (%q→%q): %w",
				i, cur.Format().Name(), d.dsts[i].Name(), err)
		}
		cur = dst
	}
	if len(d.steps) > 0 {
		m.stats.transformed.Add(1)
	}
	if d.conv != nil {
		out, err := d.conv.Convert(cur)
		if err != nil {
			return nil, err
		}
		m.stats.converted.Add(1)
		cur = out
	}
	return cur, nil
}

// decide returns the cached decision for the incoming format, computing and
// caching it on first sight (the expensive steps 11–27 of Algorithm 2).
func (m *Morpher) decide(fm *pbio.Format) (*decision, error) {
	fp := fm.Fingerprint()
	m.mu.RLock()
	d, ok := m.cache[fp]
	m.mu.RUnlock()
	if ok {
		m.stats.cacheHits.Add(1)
		return d, nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.cache[fp]; ok {
		m.stats.cacheHits.Add(1)
		return d, nil
	}
	d, err := m.buildDecisionLocked(fm)
	if err != nil {
		return nil, err
	}
	m.cache[fp] = d
	return d, nil
}

func (m *Morpher) buildDecisionLocked(fm *pbio.Format) (*decision, error) {
	// Fast path: exact structure registered.
	if reg, ok := m.byFP[fm.Fingerprint()]; ok {
		return &decision{reg: reg}, nil
	}

	// Fr: registered formats with the same name as fm.
	var fr []*pbio.Format
	for _, reg := range m.regs {
		if reg.format.Name() == fm.Name() {
			fr = append(fr, reg.format)
		}
	}

	// Line 11: try the incoming format alone, accepting only a perfect pair.
	if match, ok := m.matchLocked([]*pbio.Format{fm}, fr); ok && match.IsPerfect() {
		return m.finishDecisionLocked(nil, fm, match)
	}

	// Line 16: consider everything fm can be transformed into.
	chains := m.reachableLocked(fm)
	ft := make([]*pbio.Format, len(chains))
	for i, ch := range chains {
		ft[i] = ch.format
	}
	match, ok := m.matchLocked(ft, fr)
	if !ok {
		return &decision{reject: true}, nil
	}

	var path []*Xform
	for _, ch := range chains {
		if ch.format == match.From {
			path = ch.path
			break
		}
	}
	return m.finishDecisionLocked(path, fm, match)
}

// finishDecisionLocked compiles the chosen chain and builds the fill/drop
// converter if the matched pair is not structure-identical.
func (m *Morpher) finishDecisionLocked(path []*Xform, fm *pbio.Format, match Match) (*decision, error) {
	d := &decision{reg: m.byFP[match.To.Fingerprint()]}
	if d.reg == nil {
		// match.To always comes from m.regs; this guards internal drift.
		return nil, fmt.Errorf("core: matched format %q is not registered", match.To.Name())
	}
	for _, x := range path {
		prog, err := x.compile()
		if err != nil {
			return nil, fmt.Errorf("%w: %q→%q: %v", ErrBadTransform, x.From.Name(), x.To.Name(), err)
		}
		m.stats.compiled.Add(1)
		d.steps = append(d.steps, prog)
		d.dsts = append(d.dsts, x.To)
	}
	if !match.From.SameStructure(match.To) {
		d.conv = NewConverter(match.From, match.To)
	}
	return d, nil
}

// chain is a format reachable from the incoming one plus the transform path
// that reaches it.
type chain struct {
	format *pbio.Format
	path   []*Xform
}

// maxChainDepth bounds retro-transformation chains; realistic format
// histories are short, and the bound keeps adversarial transform graphs
// from exploding the search.
const maxChainDepth = 8

// reachableLocked returns fm plus every format reachable through registered
// transforms, breadth-first, so the shortest chain to any format is found
// first. The identity chain is first, biasing MaxMatch ties toward
// "no transformation".
func (m *Morpher) reachableLocked(fm *pbio.Format) []chain {
	visited := map[uint64]bool{fm.Fingerprint(): true}
	out := []chain{{format: fm}}
	frontier := out
	for depth := 0; depth < maxChainDepth && len(frontier) > 0; depth++ {
		var next []chain
		for _, ch := range frontier {
			for _, x := range m.xforms[ch.format.Fingerprint()] {
				fp := x.To.Fingerprint()
				if visited[fp] {
					continue
				}
				visited[fp] = true
				path := make([]*Xform, len(ch.path)+1)
				copy(path, ch.path)
				path[len(ch.path)] = x
				nc := chain{format: x.To, path: path}
				out = append(out, nc)
				next = append(next, nc)
			}
		}
		frontier = next
	}
	return out
}

// Explanation describes how the Morpher would treat a format — the
// diagnostic counterpart of decide, for tooling.
type Explanation struct {
	Rejected  bool
	Target    *pbio.Format // registered format messages are delivered as
	ChainLen  int          // transformation steps applied
	Perfect   bool         // no fill/drop needed after the chain
	Defaulted []string     // target fields filled with defaults
	Dropped   []string     // incoming fields discarded
}

// Explain reports the delivery plan for a format without delivering
// anything. It populates the decision cache as a side effect.
func (m *Morpher) Explain(fm *pbio.Format) (Explanation, error) {
	d, err := m.decide(fm)
	if err != nil {
		return Explanation{}, err
	}
	if d.reject {
		return Explanation{Rejected: true}, nil
	}
	e := Explanation{
		Target:   d.reg.format,
		ChainLen: len(d.steps),
		Perfect:  d.conv == nil,
	}
	if d.conv != nil {
		e.Defaulted = d.conv.Defaulted()
		e.Dropped = d.conv.Dropped()
	}
	return e, nil
}
