package core

import (
	"testing"

	"repro/internal/pbio"
)

func fmtOrDie(t *testing.T, name string, fields []pbio.Field) *pbio.Format {
	t.Helper()
	f, err := pbio.NewFormat(name, fields)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func bf(name string, k pbio.Kind) pbio.Field { return pbio.Field{Name: name, Kind: k} }

// echoV1V2 builds the paper's Figure 4 ChannelOpenResponse formats.
func echoV1V2(t *testing.T) (v1, v2 *pbio.Format) {
	t.Helper()
	entry := fmtOrDie(t, "MemberEntry", []pbio.Field{
		bf("info", pbio.String),
		{Name: "ID", Kind: pbio.Integer, Size: 4},
	})
	memberV2 := fmtOrDie(t, "MemberV2", []pbio.Field{
		bf("info", pbio.String),
		{Name: "ID", Kind: pbio.Integer, Size: 4},
		bf("is_Source", pbio.Boolean),
		bf("is_Sink", pbio.Boolean),
	})
	v1 = fmtOrDie(t, "ChannelOpenResponse", []pbio.Field{
		{Name: "member_count", Kind: pbio.Integer, Size: 4},
		{Name: "member_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: entry}},
		{Name: "src_count", Kind: pbio.Integer, Size: 4},
		{Name: "src_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: entry}},
		{Name: "sink_count", Kind: pbio.Integer, Size: 4},
		{Name: "sink_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: entry}},
	})
	v2 = fmtOrDie(t, "ChannelOpenResponse", []pbio.Field{
		{Name: "member_count", Kind: pbio.Integer, Size: 4},
		{Name: "member_list", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex, Sub: memberV2}},
	})
	return v1, v2
}

func TestDiffBasics(t *testing.T) {
	abc := fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Integer), bf("b", pbio.Float), bf("c", pbio.String)})
	tests := []struct {
		name   string
		f1, f2 *pbio.Format
		want   int
	}{
		{"identical", abc, abc, 0},
		{"same fields reordered",
			abc,
			fmtOrDie(t, "m", []pbio.Field{bf("c", pbio.String), bf("a", pbio.Integer), bf("b", pbio.Float)}),
			0},
		{"one renamed",
			abc,
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Integer), bf("b", pbio.Float), bf("z", pbio.String)}),
			1},
		{"subset target",
			abc,
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Integer)}),
			2},
		{"numeric kinds compatible",
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Integer)}),
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Float)}),
			0},
		{"bool into int compatible",
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Boolean)}),
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Integer)}),
			0},
		{"string vs int incompatible",
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.String)}),
			fmtOrDie(t, "m", []pbio.Field{bf("a", pbio.Integer)}),
			1},
		{"width change compatible",
			fmtOrDie(t, "m", []pbio.Field{{Name: "a", Kind: pbio.Integer, Size: 4}}),
			fmtOrDie(t, "m", []pbio.Field{{Name: "a", Kind: pbio.Integer, Size: 8}}),
			0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Diff(tt.f1, tt.f2); got != tt.want {
				t.Errorf("Diff = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDiffNested(t *testing.T) {
	inner := fmtOrDie(t, "inner", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer)})
	innerBigger := fmtOrDie(t, "inner", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer), bf("z", pbio.Integer)})
	withSub := fmtOrDie(t, "m", []pbio.Field{{Name: "sub", Kind: pbio.Complex, Sub: inner}})
	withBiggerSub := fmtOrDie(t, "m", []pbio.Field{{Name: "sub", Kind: pbio.Complex, Sub: innerBigger}})
	without := fmtOrDie(t, "m", []pbio.Field{bf("other", pbio.Integer)})
	flatSub := fmtOrDie(t, "m", []pbio.Field{bf("sub", pbio.Integer)})

	if got := Diff(withSub, withBiggerSub); got != 0 {
		t.Errorf("smaller sub into bigger sub: Diff = %d, want 0", got)
	}
	if got := Diff(withBiggerSub, withSub); got != 1 {
		t.Errorf("bigger sub into smaller sub: Diff = %d, want 1", got)
	}
	// Complex field entirely missing contributes its whole weight.
	if got := Diff(withSub, without); got != 2 {
		t.Errorf("missing complex: Diff = %d, want weight 2", got)
	}
	// Complex field vs same-named basic also contributes its whole weight.
	if got := Diff(withSub, flatSub); got != 2 {
		t.Errorf("complex vs basic: Diff = %d, want 2", got)
	}
	// Basic field vs same-named complex counts as missing.
	if got := Diff(flatSub, withSub); got != 1 {
		t.Errorf("basic vs complex: Diff = %d, want 1", got)
	}
}

func TestDiffLists(t *testing.T) {
	intList := fmtOrDie(t, "m", []pbio.Field{{Name: "l", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Integer}}})
	floatList := fmtOrDie(t, "m", []pbio.Field{{Name: "l", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Float}}})
	strList := fmtOrDie(t, "m", []pbio.Field{{Name: "l", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.String}}})
	scalar := fmtOrDie(t, "m", []pbio.Field{bf("l", pbio.Integer)})

	if got := Diff(intList, floatList); got != 0 {
		t.Errorf("int list vs float list: %d, want 0", got)
	}
	if got := Diff(intList, strList); got != 1 {
		t.Errorf("int list vs string list: %d, want 1", got)
	}
	if got := Diff(intList, scalar); got != 1 {
		t.Errorf("list vs scalar: %d, want 1 (element weight)", got)
	}
}

func TestDiffEchoVersions(t *testing.T) {
	v1, v2 := echoV1V2(t)
	// v2 → v1: is_Source and is_Sink have no counterpart in v1's entry.
	if got := Diff(v2, v1); got != 2 {
		t.Errorf("Diff(v2, v1) = %d, want 2", got)
	}
	// v1 → v2: src_count, sink_count (2) + src_list, sink_list (weight 2 each).
	if got := Diff(v1, v2); got != 6 {
		t.Errorf("Diff(v1, v2) = %d, want 6", got)
	}
	if Perfect(v1, v2) || !Perfect(v1, v1) {
		t.Error("Perfect wrong")
	}

	// W(v1) = member_count + 3×(info+ID) + 2 counts = 9; W(v2) = 1 + 4 = 5.
	if w := v1.Weight(); w != 9 {
		t.Errorf("Weight(v1) = %d, want 9", w)
	}
	if w := v2.Weight(); w != 5 {
		t.Errorf("Weight(v2) = %d, want 5", w)
	}
	// M_r(v2, v1) = Diff(v1, v2)/W(v1) = 6/9.
	if got, want := MismatchRatio(v2, v1), 6.0/9.0; got != want {
		t.Errorf("Mr(v2, v1) = %g, want %g", got, want)
	}
	// M_r(v1, v2) = Diff(v2, v1)/W(v2) = 2/5.
	if got, want := MismatchRatio(v1, v2), 2.0/5.0; got != want {
		t.Errorf("Mr(v1, v2) = %g, want %g", got, want)
	}
}

func TestMismatchRatioZeroWeight(t *testing.T) {
	empty := fmtOrDie(t, "e", []pbio.Field{{Name: "l", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Complex,
		Sub: fmtOrDie(t, "none", []pbio.Field{{Name: "l2", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Integer}}})}}})
	// Weight counts one int through the nested lists, so use a truly
	// weightless format: impossible to declare without basics; instead
	// verify the convention through a format whose counterpart is itself.
	if MismatchRatio(empty, empty) != 0 {
		t.Error("self mismatch must be 0")
	}
}

func TestMaxMatchSelection(t *testing.T) {
	// Candidate 1: two fields, both different (the paper's small-pair
	// example). Candidate 2: many matching fields, a few uncommon — the
	// better match despite a larger absolute diff.
	small1 := fmtOrDie(t, "p", []pbio.Field{bf("only_a", pbio.Integer)})
	small2 := fmtOrDie(t, "p", []pbio.Field{bf("only_b", pbio.Integer)})

	bigFields := make([]pbio.Field, 0, 20)
	for _, n := range []string{"f01", "f02", "f03", "f04", "f05", "f06", "f07", "f08", "f09", "f10",
		"f11", "f12", "f13", "f14", "f15", "f16"} {
		bigFields = append(bigFields, bf(n, pbio.Integer))
	}
	big1 := fmtOrDie(t, "p", append(append([]pbio.Field{}, bigFields...), bf("u1", pbio.Integer), bf("u2", pbio.Integer)))
	big2 := fmtOrDie(t, "p", append(append([]pbio.Field{}, bigFields...), bf("v1", pbio.Integer), bf("v2", pbio.Integer)))

	th := Thresholds{Diff: 10, Mismatch: 1.0}
	m, ok := MaxMatch([]*pbio.Format{small1, big1}, []*pbio.Format{small2, big2}, th)
	if !ok {
		t.Fatal("no match")
	}
	// small pair: diff 1, Mr = 1/1 = 1. big pair: diff 2, Mr = 2/18 ≈ 0.11.
	if m.From != big1 || m.To != big2 {
		t.Errorf("MaxMatch picked (%q fields=%d → %q), want the big pair",
			m.From.Name(), m.From.NumFields(), m.To.Name())
	}
	if m.Diff != 2 {
		t.Errorf("Diff = %d, want 2", m.Diff)
	}
}

func TestMaxMatchThresholds(t *testing.T) {
	v1, v2 := echoV1V2(t)
	// v2 → v1 has diff 2, Mr 6/9.
	if _, ok := MaxMatch([]*pbio.Format{v2}, []*pbio.Format{v1}, Thresholds{}); ok {
		t.Error("zero thresholds must admit only perfect matches")
	}
	if _, ok := MaxMatch([]*pbio.Format{v2}, []*pbio.Format{v1}, Thresholds{Diff: 2, Mismatch: 0.5}); ok {
		t.Error("Mr 6/9 must fail a 0.5 mismatch threshold")
	}
	if _, ok := MaxMatch([]*pbio.Format{v2}, []*pbio.Format{v1}, Thresholds{Diff: 1, Mismatch: 1.0}); ok {
		t.Error("diff 2 must fail a diff threshold of 1")
	}
	m, ok := MaxMatch([]*pbio.Format{v2}, []*pbio.Format{v1}, Thresholds{Diff: 2, Mismatch: 0.7})
	if !ok || m.From != v2 || m.To != v1 {
		t.Errorf("expected match under (2, 0.7): ok=%v m=%+v", ok, m)
	}
	// A perfect pair passes zero thresholds.
	if m, ok := MaxMatch([]*pbio.Format{v1}, []*pbio.Format{v1}, Thresholds{}); !ok || !m.IsPerfect() {
		t.Error("identity must match under zero thresholds")
	}
}

func TestMaxMatchTieBreak(t *testing.T) {
	a := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer)})
	b := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("y", pbio.Integer)})
	// a and b are structurally identical: both pairs score (0, 0). The
	// earlier F1 entry must win, so callers can put the identity first.
	m, ok := MaxMatch([]*pbio.Format{a, b}, []*pbio.Format{b}, Thresholds{})
	if !ok || m.From != a {
		t.Errorf("tie-break must keep the earliest candidate; got From=%p want %p", m.From, a)
	}
	// Least diff breaks equal mismatch ratios.
	target := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	oneExtra := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("e1", pbio.Integer)})
	twoExtra := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer), bf("e1", pbio.Integer), bf("e2", pbio.Integer)})
	m, ok = MaxMatch([]*pbio.Format{twoExtra, oneExtra}, []*pbio.Format{target}, Thresholds{Diff: 5, Mismatch: 1})
	if !ok || m.From != oneExtra {
		t.Errorf("least-diff tie-break failed: got %v", m.From)
	}
}

func TestMaxMatchEmptyAndNil(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	if _, ok := MaxMatch(nil, []*pbio.Format{f}, DefaultThresholds); ok {
		t.Error("empty F1 must not match")
	}
	if _, ok := MaxMatch([]*pbio.Format{f}, nil, DefaultThresholds); ok {
		t.Error("empty F2 must not match")
	}
	if m, ok := MaxMatch([]*pbio.Format{nil, f}, []*pbio.Format{nil, f}, DefaultThresholds); !ok || m.From != f {
		t.Error("nil entries must be skipped, not crash")
	}
}
