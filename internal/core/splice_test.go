package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pbio"
)

// randomFixedFormat is randomFormat restricted to fixed-width kinds (plus
// nested complex fields), so every generated format is fixed-stride. Names
// come from the same shared pool, so random pairs overlap and exercise real
// fill/drop conversions.
func randomFixedFormat(rng *rand.Rand, depth int) *pbio.Format {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	n := 1 + rng.Intn(len(names)-1)
	fields := make([]pbio.Field, 0, n)
	for i := 0; i < n; i++ {
		fields = append(fields, randomFixedField(rng, names[i], depth))
	}
	f, err := pbio.NewFormat("quick", fields)
	if err != nil {
		panic(err) // generator bug, not a property failure
	}
	return f
}

func randomFixedField(rng *rand.Rand, name string, depth int) pbio.Field {
	kinds := []pbio.Kind{pbio.Integer, pbio.Unsigned, pbio.Float, pbio.Boolean, pbio.Char, pbio.Enum}
	if depth > 0 {
		kinds = append(kinds, pbio.Complex)
	}
	k := kinds[rng.Intn(len(kinds))]
	switch k {
	case pbio.Complex:
		return pbio.Field{Name: name, Kind: pbio.Complex, Sub: randomFixedFormat(rng, depth-1)}
	case pbio.Integer, pbio.Unsigned, pbio.Enum:
		sizes := []int{1, 2, 4, 8}
		return pbio.Field{Name: name, Kind: k, Size: sizes[rng.Intn(len(sizes))]}
	case pbio.Float:
		sizes := []int{4, 8}
		return pbio.Field{Name: name, Kind: k, Size: sizes[rng.Intn(len(sizes))]}
	default:
		return pbio.Field{Name: name, Kind: k}
	}
}

// deliverOnce builds a one-registration morpher, pushes data through
// DeliverEncoded, and reports what the handler received.
func deliverOnce(t *testing.T, dst *pbio.Format, data []byte, src *pbio.Format, opts ...MorpherOption) ([]byte, Stats, error) {
	t.Helper()
	var got []byte
	m := NewMorpher(DefaultThresholds, opts...)
	if err := m.RegisterFormatEncoded(dst, func(b []byte, f *pbio.Format) error {
		if !f.SameStructure(dst) {
			t.Fatalf("handler got format %q (%016x), registered %016x", f.Name(), f.Fingerprint(), dst.Fingerprint())
		}
		got = append([]byte(nil), b...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := m.DeliverEncoded(data, src)
	return got, m.Stats(), err
}

// TestQuickSpliceLaneMatchesRecordLane is the differential property the
// whole fast lane rests on: for ANY pair of fixed-stride formats and any
// source record, delivering the encoded message with splicing enabled and
// with it disabled (WithSpliceDisabled) must hand the registered handler
// byte-identical input — or both must fail identically.
func TestQuickSpliceLaneMatchesRecordLane(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomFixedFormat(rng, 2)
		dst := randomFixedFormat(rng, 2)
		rec := randomRecordOf(rng, src)
		data := pbio.EncodeRecord(rec)

		spliceOut, spliceStats, errS := deliverOnce(t, dst, data, src)
		recordOut, _, errR := deliverOnce(t, dst, data, src, WithSpliceDisabled())
		if (errS == nil) != (errR == nil) {
			t.Logf("seed %d: lanes disagree on acceptance: splice=%v record=%v\nsrc:\n%s\ndst:\n%s",
				seed, errS, errR, src, dst)
			return false
		}
		if !bytes.Equal(spliceOut, recordOut) {
			t.Logf("seed %d: lanes delivered different bytes\nsplice: %x\nrecord: %x\nsrc:\n%s\ndst:\n%s",
				seed, spliceOut, recordOut, src, dst)
			return false
		}
		// Counter discipline: an accepted delivery is exactly one of hit/miss.
		if errS == nil && spliceStats.SpliceHits+spliceStats.SpliceMisses != 1 {
			t.Logf("seed %d: stats %+v: accepted delivery not counted exactly once", seed, spliceStats)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpliceBoxedHandlersAgree runs the same differential property for
// boxed Handler registrations: the splice lane's lazy decode must produce a
// record equal to the record lane's.
func TestQuickSpliceBoxedHandlersAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomFixedFormat(rng, 2)
		dst := randomFixedFormat(rng, 2)
		data := pbio.EncodeRecord(randomRecordOf(rng, src))

		run := func(opts ...MorpherOption) (*pbio.Record, error) {
			var got *pbio.Record
			m := NewMorpher(DefaultThresholds, opts...)
			if err := m.RegisterFormat(dst, func(r *pbio.Record) error {
				got = r
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			return got, m.DeliverEncoded(data, src)
		}
		spliceRec, errS := run()
		recordRec, errR := run(WithSpliceDisabled())
		if (errS == nil) != (errR == nil) {
			t.Logf("seed %d: lanes disagree on acceptance: splice=%v record=%v", seed, errS, errR)
			return false
		}
		if errS != nil {
			return true
		}
		if !spliceRec.Equal(recordRec) {
			t.Logf("seed %d: records differ\nsplice: %s\nrecord: %s\nsrc:\n%s\ndst:\n%s",
				seed, spliceRec, recordRec, src, dst)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func spliceTestFormats(t *testing.T) (src, dst *pbio.Format) {
	t.Helper()
	src, err := pbio.NewFormat("m", []pbio.Field{
		{Name: "a", Kind: pbio.Integer, Size: 4},
		{Name: "b", Kind: pbio.Float, Size: 8},
		{Name: "c", Kind: pbio.Unsigned, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	dst, err = pbio.NewFormat("m", []pbio.Field{
		{Name: "c", Kind: pbio.Unsigned, Size: 2},
		{Name: "a", Kind: pbio.Integer, Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

// TestSpliceConversionTakesByteLane pins that a reordering/dropping
// conversion between fixed-stride formats actually compiles to a splice
// program and is counted as a splice hit — guarding against the fast lane
// silently regressing to the record lane.
func TestSpliceConversionTakesByteLane(t *testing.T) {
	src, dst := spliceTestFormats(t)
	rec := pbio.NewRecord(src).
		MustSet("a", pbio.Int(-7)).
		MustSet("b", pbio.Float64(2.5)).
		MustSet("c", pbio.Uint(40000))
	data := pbio.EncodeRecord(rec)

	got, stats, err := deliverOnce(t, dst, data, src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpliceHits != 1 || stats.SpliceMisses != 0 {
		t.Fatalf("stats %+v: conversion did not take the splice lane", stats)
	}
	out, err := pbio.DecodeRecord(got, dst)
	if err != nil {
		t.Fatalf("splice output does not decode: %v", err)
	}
	if v, _ := out.Get("a"); v.Int64() != -7 {
		t.Errorf("a = %d, want -7", v.Int64())
	}
	if v, _ := out.Get("c"); v.Int64() != 40000 {
		t.Errorf("c = %d, want 40000", v.Int64())
	}
}

// TestSpliceLaneRejectsCorruptPayload proves the byte lane never copies out
// of a payload whose length does not match the source format's stride — for
// both the identity pass-through and a compiled splice program.
func TestSpliceLaneRejectsCorruptPayload(t *testing.T) {
	src, dst := spliceTestFormats(t)
	rec := pbio.NewRecord(src).MustSet("a", pbio.Int(1))
	data := pbio.EncodeRecord(rec)

	t.Run("splice", func(t *testing.T) {
		for _, corrupt := range [][]byte{
			data[:len(data)-3],                         // truncated payload
			data[:pbio.EnvelopeSize],                   // envelope only
			append(append([]byte(nil), data...), 0xEE), // trailing byte
		} {
			got, _, err := deliverOnce(t, dst, corrupt, src)
			if !errors.Is(err, pbio.ErrShortMessage) {
				t.Errorf("len %d: err = %v, want ErrShortMessage", len(corrupt), err)
			}
			if got != nil {
				t.Errorf("len %d: handler invoked with %x despite corrupt input", len(corrupt), got)
			}
		}
	})
	t.Run("identity", func(t *testing.T) {
		for _, corrupt := range [][]byte{
			data[:len(data)-3],
			append(append([]byte(nil), data...), 0xEE),
		} {
			got, _, err := deliverOnce(t, src, corrupt, src)
			if !errors.Is(err, pbio.ErrShortMessage) {
				t.Errorf("len %d: err = %v, want ErrShortMessage", len(corrupt), err)
			}
			if got != nil {
				t.Errorf("len %d: handler invoked with %x despite corrupt input", len(corrupt), got)
			}
		}
	})
}

// TestSpliceDisabledByOption verifies the escape hatch: the same delivery
// counts as a miss when WithSpliceDisabled is set.
func TestSpliceDisabledByOption(t *testing.T) {
	src, dst := spliceTestFormats(t)
	data := pbio.EncodeRecord(pbio.NewRecord(src).MustSet("a", pbio.Int(5)))
	_, stats, err := deliverOnce(t, dst, data, src, WithSpliceDisabled())
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpliceHits != 0 || stats.SpliceMisses != 1 {
		t.Fatalf("stats %+v: WithSpliceDisabled did not force the record lane", stats)
	}
}
