package core

import (
	"strings"
	"testing"

	"repro/internal/pbio"
)

func TestDiffReportEchoVersions(t *testing.T) {
	v1, v2 := echoV1V2(t)
	changes := DiffReport(v1, v2)

	byPath := make(map[string]FieldChange, len(changes))
	for _, c := range changes {
		byPath[c.Path] = c
	}
	// Going v1 → v2: the parallel lists and their counts disappear, the
	// member entries gain role booleans.
	for _, removed := range []string{"src_count", "src_list", "sink_count", "sink_list"} {
		c, ok := byPath[removed]
		if !ok || c.Kind != FieldRemoved {
			t.Errorf("expected %q removed, got %+v", removed, c)
		}
	}
	for _, added := range []string{"member_list.is_Source", "member_list.is_Sink"} {
		c, ok := byPath[added]
		if !ok || c.Kind != FieldAdded {
			t.Errorf("expected %q added, got %+v", added, c)
		}
	}
	if len(changes) != 6 {
		t.Errorf("changes = %d, want 6:\n%s", len(changes), FormatChanges(changes))
	}

	// The report is consistent with Algorithm 1: removed+retyped counts
	// match Diff(a, b) in weight terms for this flat-ish case.
	if got := Diff(v1, v2); got != 6 {
		t.Errorf("Diff = %d", got)
	}
}

func TestDiffReportKinds(t *testing.T) {
	a := fmtOrDie(t, "m", []pbio.Field{
		bf("same", pbio.Integer),
		{Name: "widened", Kind: pbio.Integer, Size: 4},
		bf("retyped", pbio.String),
		bf("gone", pbio.Float),
		{Name: "nums", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Integer}},
	})
	b := fmtOrDie(t, "m", []pbio.Field{
		bf("same", pbio.Integer),
		{Name: "widened", Kind: pbio.Integer, Size: 8},
		bf("retyped", pbio.Integer),
		bf("brandnew", pbio.String),
		{Name: "nums", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Float}},
	})
	changes := DiffReport(a, b)
	want := map[string]ChangeKind{
		"widened":  FieldResized,
		"retyped":  FieldRetyped,
		"gone":     FieldRemoved,
		"brandnew": FieldAdded,
		"nums":     FieldResized, // int elems → float elems: compatible width change
	}
	if len(changes) != len(want) {
		t.Fatalf("changes:\n%s", FormatChanges(changes))
	}
	for _, c := range changes {
		if want[c.Path] != c.Kind {
			t.Errorf("%s: kind = %v, want %v", c.Path, c.Kind, want[c.Path])
		}
	}

	text := FormatChanges(changes)
	for _, needle := range []string{"+ brandnew", "- gone", "~ widened", "(resized)", "(retyped)"} {
		if !strings.Contains(text, needle) {
			t.Errorf("rendered report missing %q:\n%s", needle, text)
		}
	}
}

func TestDiffReportIdentical(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{bf("x", pbio.Integer)})
	if changes := DiffReport(f, f); len(changes) != 0 {
		t.Errorf("identical formats reported changes: %v", changes)
	}
	if FormatChanges(nil) != "no structural changes\n" {
		t.Error("empty rendering wrong")
	}
}

func TestDiffReportListVsScalar(t *testing.T) {
	a := fmtOrDie(t, "m", []pbio.Field{{Name: "l", Kind: pbio.List, Elem: &pbio.Field{Kind: pbio.Integer}}})
	b := fmtOrDie(t, "m", []pbio.Field{bf("l", pbio.Integer)})
	changes := DiffReport(a, b)
	if len(changes) != 1 || changes[0].Kind != FieldRetyped {
		t.Errorf("changes = %+v", changes)
	}
	if !strings.Contains(changes[0].From, "list of") {
		t.Errorf("From = %q", changes[0].From)
	}
}
