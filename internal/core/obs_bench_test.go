package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/pbio"
)

// benchDeliver measures the steady-state (cached-decision) delivery path.
// Run both sub-benchmarks to price the instrumentation:
//
//	go test ./internal/core -bench BenchmarkDeliverInstrumentation -benchmem
//
// The acceptance bar for the observability layer is that obs-enabled stays
// within 5% of obs-disabled and that obs-disabled reports 0 B/op — the
// paper's lightweight claim must survive its own instrumentation.
func BenchmarkDeliverInstrumentation(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		f, err := pbio.NewFormat("bench", []pbio.Field{
			{Name: "x", Kind: pbio.Integer},
			{Name: "y", Kind: pbio.Float},
		})
		if err != nil {
			b.Fatal(err)
		}
		m := NewMorpher(DefaultThresholds, WithObs(reg))
		if err := m.RegisterFormat(f, func(*pbio.Record) error { return nil }); err != nil {
			b.Fatal(err)
		}
		rec := pbio.NewRecord(f).MustSet("x", pbio.Int(1)).MustSet("y", pbio.Float64(2))
		if err := m.Deliver(rec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Deliver(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("obs-disabled", func(b *testing.B) { run(b, nil) })
	b.Run("obs-enabled", func(b *testing.B) { run(b, obs.NewRegistry("bench")) })
}

// BenchmarkDeliverMorphObs prices instrumentation on the heavier cached
// path that actually runs a transformation per delivery.
func BenchmarkDeliverMorphObs(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		v1, err := pbio.NewFormat("S", []pbio.Field{{Name: "a", Kind: pbio.Integer}})
		if err != nil {
			b.Fatal(err)
		}
		v2, err := pbio.NewFormat("S", []pbio.Field{
			{Name: "a", Kind: pbio.Integer},
			{Name: "b", Kind: pbio.Integer},
		})
		if err != nil {
			b.Fatal(err)
		}
		m := NewMorpher(DefaultThresholds, WithObs(reg))
		if err := m.RegisterFormat(v1, func(*pbio.Record) error { return nil }); err != nil {
			b.Fatal(err)
		}
		if err := m.AddTransform(&Xform{From: v2, To: v1, Code: "old.a = new.a + new.b;"}); err != nil {
			b.Fatal(err)
		}
		rec := pbio.NewRecord(v2).MustSet("a", pbio.Int(1)).MustSet("b", pbio.Int(2))
		if err := m.Deliver(rec); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Deliver(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("obs-disabled", func(b *testing.B) { run(b, nil) })
	b.Run("obs-enabled", func(b *testing.B) { run(b, obs.NewRegistry("bench")) })
}
