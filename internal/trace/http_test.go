package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildTrace records a small but realistic tree: publish → (encode,
// frame_write), plus an orphan span from "another process" sharing the
// trace ID.
func buildTrace(tr *Tracer) Context {
	root := tr.StartTrace(StagePublish)
	enc := tr.StartSpan(root.Context(), StageEncode)
	enc.N = 61
	enc.End()
	fw := tr.StartSpan(root.Context(), StageFrameWrite)
	fw.FP = 0x1234
	fw.End()
	root.End()
	return root.Context()
}

func TestTracezAssembly(t *testing.T) {
	tr := New(Config{Capacity: 64})
	first := buildTrace(tr)
	second := buildTrace(tr)

	snap := tr.Tracez()
	if snap.TotalSpans != 6 {
		t.Fatalf("TotalSpans = %d, want 6", snap.TotalSpans)
	}
	if len(snap.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(snap.Traces))
	}
	// Most recent first.
	if snap.Traces[0].TraceID != second.Trace.String() || snap.Traces[1].TraceID != first.Trace.String() {
		t.Errorf("trace order: got %s,%s", snap.Traces[0].TraceID, snap.Traces[1].TraceID)
	}
	got := snap.Traces[0]
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	for _, stage := range []string{"publish", "encode", "frame_write"} {
		if _, ok := got.StageNS[stage]; !ok {
			t.Errorf("StageNS missing %q: %v", stage, got.StageNS)
		}
	}
	if got.DurNS <= 0 {
		t.Errorf("trace duration %d, want > 0", got.DurNS)
	}
}

func TestTracezHandlerRenderings(t *testing.T) {
	tr := New(Config{Capacity: 64})
	buildTrace(tr)
	buildTrace(tr)
	srv := httptest.NewServer(Handler(tr))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// JSON (default).
	body, ctype := get(TracezPath)
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("default Content-Type = %q", ctype)
	}
	var snap TracezSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON body invalid: %v\n%s", err, body)
	}
	if len(snap.Traces) != 2 || snap.TotalSpans != 6 {
		t.Errorf("snapshot over HTTP = %d traces / %d spans", len(snap.Traces), snap.TotalSpans)
	}

	// limit caps the trace list.
	body, _ = get(TracezPath + "?limit=1")
	var limited TracezSnapshot
	if err := json.Unmarshal([]byte(body), &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Traces) != 1 {
		t.Errorf("limit=1 returned %d traces", len(limited.Traces))
	}

	// Text tree.
	body, ctype = get(TracezPath + "?format=text")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("text Content-Type = %q", ctype)
	}
	for _, want := range []string{"trace ", "publish", "  encode", "stages:"} {
		if !strings.Contains(body, want) {
			t.Errorf("text rendering missing %q:\n%s", want, body)
		}
	}

	// JSONL export: one valid span object per line.
	body, ctype = get(TracezPath + "?format=jsonl")
	if !strings.HasPrefix(ctype, "application/jsonl") {
		t.Errorf("jsonl Content-Type = %q", ctype)
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var sp SpanJSON
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("jsonl line %d invalid: %v\n%s", lines, err, sc.Text())
		}
		if sp.TraceID == "" || sp.Stage == "" {
			t.Errorf("jsonl line %d incomplete: %+v", lines, sp)
		}
		lines++
	}
	if lines != 6 {
		t.Errorf("jsonl lines = %d, want 6", lines)
	}
}

func TestTracezTextOrphanSpans(t *testing.T) {
	// A span whose parent is not retained (remote process, ring eviction)
	// must render as a root, not vanish.
	tr := New(Config{Capacity: 8})
	remote := Context{Sampled: true}
	remote.Trace[0] = 1
	remote.Span[0] = 2
	s := tr.StartSpan(remote, StageMorphDecide)
	s.End()
	text := tr.Tracez().Text()
	if !strings.Contains(text, "morph_decide") {
		t.Errorf("orphan span missing from text:\n%s", text)
	}
}
