package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TracezPath is the debug endpoint path components mount Handler at.
const TracezPath = "/debug/tracez"

// SpanJSON is one span in the /debug/tracez payload and one line of the
// JSONL export.
type SpanJSON struct {
	TraceID     string    `json:"trace_id"`
	SpanID      string    `json:"span_id"`
	ParentID    string    `json:"parent_id,omitempty"`
	Stage       string    `json:"stage"`
	Start       time.Time `json:"start"`
	DurNS       int64     `json:"dur_ns"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	N           int64     `json:"n,omitempty"`
	Err         bool      `json:"err,omitempty"`
}

func spanJSON(r SpanRecord) SpanJSON {
	s := SpanJSON{
		TraceID: r.Trace.String(),
		SpanID:  r.Span.String(),
		Stage:   r.Stage.String(),
		Start:   time.Unix(0, r.StartNS),
		DurNS:   r.DurNS,
		N:       r.N,
		Err:     r.Err,
	}
	if !r.Parent.IsZero() {
		s.ParentID = r.Parent.String()
	}
	if r.FP != 0 {
		s.Fingerprint = fmt.Sprintf("%016x", r.FP)
	}
	return s
}

// TraceJSON is one assembled trace tree: every retained span sharing a
// trace ID, with per-stage latency totals.
type TraceJSON struct {
	TraceID string           `json:"trace_id"`
	Start   time.Time        `json:"start"`
	DurNS   int64            `json:"dur_ns"` // last span end − first span start
	Spans   []SpanJSON       `json:"spans"`  // by start time
	StageNS map[string]int64 `json:"stage_ns"`
}

// TracezSnapshot is the JSON payload of /debug/tracez.
type TracezSnapshot struct {
	TotalSpans   uint64      `json:"total_spans"`   // spans ever recorded
	SpansDropped uint64      `json:"spans_dropped"` // ring overwrites (see Tracer.Dropped)
	Traces       []TraceJSON `json:"traces"`        // most recent first
}

// Tracez assembles the retained spans into per-trace latency breakdowns,
// most recent trace first. A nil tracer yields an empty snapshot.
func (t *Tracer) Tracez() TracezSnapshot {
	snap := TracezSnapshot{TotalSpans: t.Total(), SpansDropped: t.Dropped()}
	if t == nil {
		return snap
	}
	byTrace := make(map[TraceID][]SpanRecord)
	var order []TraceID // first-seen order follows ring order (oldest first)
	for _, r := range t.Snapshot() {
		if _, seen := byTrace[r.Trace]; !seen {
			order = append(order, r.Trace)
		}
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	for i := len(order) - 1; i >= 0; i-- {
		spans := byTrace[order[i]]
		sort.Slice(spans, func(a, b int) bool { return spans[a].StartNS < spans[b].StartNS })
		tr := TraceJSON{
			TraceID: order[i].String(),
			Start:   time.Unix(0, spans[0].StartNS),
			Spans:   make([]SpanJSON, 0, len(spans)),
			StageNS: make(map[string]int64),
		}
		var end int64
		for _, r := range spans {
			tr.Spans = append(tr.Spans, spanJSON(r))
			tr.StageNS[r.Stage.String()] += r.DurNS
			if e := r.StartNS + r.DurNS; e > end {
				end = e
			}
		}
		tr.DurNS = end - spans[0].StartNS
		snap.Traces = append(snap.Traces, tr)
	}
	return snap
}

// WriteJSONL writes every retained span as one JSON object per line,
// oldest first — the offline-analysis export (`?format=jsonl` over HTTP).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Snapshot() {
		if err := enc.Encode(spanJSON(r)); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the snapshot as human-readable trace trees: spans
// indented beneath their in-process parents, with stage totals per trace.
func (s TracezSnapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "# tracez: %d traces retained, %d spans ever recorded, %d dropped\n",
		len(s.Traces), s.TotalSpans, s.SpansDropped)
	for _, tr := range s.Traces {
		fmt.Fprintf(w, "trace %s  start=%s  total=%s  spans=%d\n",
			tr.TraceID, tr.Start.Format(time.RFC3339Nano),
			time.Duration(tr.DurNS), len(tr.Spans))

		children := make(map[string][]SpanJSON)
		ids := make(map[string]bool, len(tr.Spans))
		for _, sp := range tr.Spans {
			ids[sp.SpanID] = true
		}
		var roots []SpanJSON
		for _, sp := range tr.Spans {
			// Spans whose parent is not retained (sampled out, ring-evicted,
			// or recorded by another process's tracer) render as roots.
			if sp.ParentID == "" || !ids[sp.ParentID] {
				roots = append(roots, sp)
			} else {
				children[sp.ParentID] = append(children[sp.ParentID], sp)
			}
		}
		var render func(sp SpanJSON, depth int)
		render = func(sp SpanJSON, depth int) {
			fmt.Fprintf(w, "  %s%-12s %10s", strings.Repeat("  ", depth),
				sp.Stage, time.Duration(sp.DurNS))
			if sp.Fingerprint != "" {
				fmt.Fprintf(w, "  fp=%s", sp.Fingerprint)
			}
			if sp.N != 0 {
				fmt.Fprintf(w, "  n=%d", sp.N)
			}
			if sp.Err {
				fmt.Fprint(w, "  ERR")
			}
			fmt.Fprintln(w)
			for _, c := range children[sp.SpanID] {
				render(c, depth+1)
			}
		}
		for _, r := range roots {
			render(r, 0)
		}
		var stages []string
		for k := range tr.StageNS {
			stages = append(stages, k)
		}
		sort.Strings(stages)
		fmt.Fprint(w, "  stages:")
		for _, k := range stages {
			fmt.Fprintf(w, " %s=%s", k, time.Duration(tr.StageNS[k]))
		}
		fmt.Fprintln(w)
	}
}

// Text returns WriteText output as a string.
func (s TracezSnapshot) Text() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}

// Handler returns the /debug/tracez HTTP handler. The default response is
// the JSON TracezSnapshot; `?format=text` (or Accept: text/plain) renders
// trace trees, `?format=jsonl` streams the raw span export, and `?limit=N`
// bounds the number of traces in the JSON/text renderings. A nil tracer
// serves an empty snapshot, so the endpoint can be mounted unconditionally.
//
// seeAlso lists sibling debug endpoints (the /debug/ index, /metrics, ...)
// advertised in the JSON (see_also field) and text (# see also lines)
// renderings, mirroring obs.Handler.
func Handler(t *Tracer, seeAlso ...string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		if format == "" && strings.HasPrefix(req.Header.Get("Accept"), "text/plain") {
			format = "text"
		}
		if format == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			_ = t.WriteJSONL(w)
			return
		}
		snap := t.Tracez()
		if lim, err := strconv.Atoi(req.URL.Query().Get("limit")); err == nil && lim >= 0 && lim < len(snap.Traces) {
			snap.Traces = snap.Traces[:lim]
		}
		if format == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			for _, p := range seeAlso {
				fmt.Fprintf(w, "# see also %s\n", p)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			TracezSnapshot
			SeeAlso []string `json:"see_also,omitempty"`
		}{snap, seeAlso})
	})
}
