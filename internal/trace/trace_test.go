package trace

import (
	"sync"
	"testing"
	"time"
)

// TestNilSafety: a nil tracer and the zero Span must be inert no-ops —
// that is exactly what a component built without tracing holds.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	sp := tr.StartTrace(StagePublish)
	if sp.Recording() || sp.Context().Valid() || sp.Context().Sampled {
		t.Fatal("nil tracer must hand out inert spans")
	}
	sp.N = 7
	sp.End()
	sp.EndErr(ErrBadContext)
	child := tr.StartSpan(Context{Sampled: true}, StageDeliver)
	if child.Recording() {
		t.Fatal("nil tracer StartSpan must be inert")
	}
	if tr.Total() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer must be empty")
	}
	if got := tr.Tracez(); got.TotalSpans != 0 || len(got.Traces) != 0 {
		t.Fatalf("nil Tracez = %+v, want empty", got)
	}
}

// TestDisabledAllocationFree: the disabled path (nil tracer, and enabled
// tracer with an unsampled context) must not allocate — the property the
// "splice lane within 5% of PR 2" acceptance bar rests on.
func TestDisabledAllocationFree(t *testing.T) {
	var nilTracer *Tracer
	live := New(Config{Capacity: 16})
	unsampled := Context{}
	allocs := testing.AllocsPerRun(1000, func() {
		s := nilTracer.StartTrace(StagePublish)
		s.End()
		c := nilTracer.StartSpan(Context{Sampled: true}, StageDeliver)
		c.End()
		u := live.StartSpan(unsampled, StageDeliver)
		u.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New(Config{Capacity: 64})
	root := tr.StartTrace(StagePublish)
	if !root.Recording() || !root.Context().Sampled || !root.Context().Valid() {
		t.Fatalf("root span not live: %+v", root.Context())
	}
	child := tr.StartSpan(root.Context(), StageEncode)
	child.N = 42
	child.FP = 0xDEADBEEF
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	root.End() // double End must not double-record

	spans := tr.Snapshot()
	if len(spans) != 2 || tr.Total() != 2 {
		t.Fatalf("recorded %d spans (total %d), want 2", len(spans), tr.Total())
	}
	c, r := spans[0], spans[1]
	if c.Stage != StageEncode || r.Stage != StagePublish {
		t.Fatalf("stages = %v, %v", c.Stage, r.Stage)
	}
	if c.Trace != r.Trace {
		t.Error("child must share the root's trace ID")
	}
	if c.Parent != r.Span {
		t.Error("child's parent must be the root span ID")
	}
	if c.Span == r.Span || c.Span.IsZero() {
		t.Error("span IDs must be unique and nonzero")
	}
	if c.N != 42 || c.FP != 0xDEADBEEF {
		t.Errorf("attributes lost: %+v", c)
	}
	if c.DurNS < int64(time.Millisecond) {
		t.Errorf("child duration %dns, want >= 1ms", c.DurNS)
	}
	if r.DurNS < c.DurNS {
		t.Errorf("root (%dns) must outlast child (%dns)", r.DurNS, c.DurNS)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{Capacity: 256, SampleEvery: 4})
	sampled := 0
	for i := 0; i < 100; i++ {
		s := tr.StartTrace(StagePublish)
		if s.Recording() {
			sampled++
			// Downstream spans of a sampled trace always record.
			c := tr.StartSpan(s.Context(), StageDeliver)
			if !c.Recording() {
				t.Fatal("child of sampled trace must record")
			}
			c.End()
		} else if s.Context().Sampled {
			t.Fatal("sampled-out root must carry an unsampled context")
		}
		s.End()
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 with SampleEvery=4, want 25", sampled)
	}
	if got := tr.Total(); got != 50 {
		t.Errorf("recorded %d spans, want 50 (root+child per sampled trace)", got)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	tr := New(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		s := tr.StartTrace(StagePublish)
		s.N = int64(i)
		s.End()
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, r := range got {
		if want := uint64(7 + i); r.Seq != want || r.N != int64(want-1) {
			t.Errorf("entry %d: seq=%d n=%d, want seq=%d n=%d", i, r.Seq, r.N, want, want-1)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.StartTrace(StageFanout)
				c := tr.StartSpan(s.Context(), StageDeliver)
				c.End()
				s.End()
				_ = tr.Snapshot() // concurrent readers must be safe too
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*200*2 {
		t.Errorf("total = %d, want %d", tr.Total(), 8*200*2)
	}
	if got := len(tr.Snapshot()); got != 64 {
		t.Errorf("retained %d, want 64", got)
	}
}

func TestContextWireRoundTrip(t *testing.T) {
	tr := New(Config{})
	want := tr.StartTrace(StagePublish).Context()
	b := want.AppendWire(nil)
	if len(b) != ContextWireSize {
		t.Fatalf("wire size = %d, want %d", len(b), ContextWireSize)
	}
	got, err := ParseWire(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}

	// Unsampled round trip.
	unsampled := Context{Trace: want.Trace, Span: want.Span}
	got, err = ParseWire(unsampled.AppendWire(nil))
	if err != nil || got.Sampled {
		t.Fatalf("unsampled round trip: %+v, %v", got, err)
	}

	// Malformed bodies.
	for _, bad := range [][]byte{nil, b[:10], append(append([]byte{}, b...), 0), make([]byte, ContextWireSize)} {
		if _, err := ParseWire(bad); err == nil {
			t.Errorf("ParseWire(%d bytes, zero=%v) accepted", len(bad), bad == nil)
		}
	}

	// Reserved flag bits must be ignored, not rejected.
	b[24] |= 0xFE
	got, err = ParseWire(b)
	if err != nil || !got.Sampled {
		t.Fatalf("reserved flags: %+v, %v", got, err)
	}
}

func TestIDUniqueness(t *testing.T) {
	tr := New(Config{})
	seen := make(map[SpanID]bool)
	parent := tr.StartTrace(StagePublish).Context()
	for i := 0; i < 10_000; i++ {
		s := tr.StartSpan(parent, StageDeliver)
		id := s.Context().Span
		if id.IsZero() || seen[id] {
			t.Fatalf("duplicate or zero span ID at %d: %s", i, id)
		}
		seen[id] = true
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageUnknown; s <= StageDeliver; s++ {
		if s.String() == "" {
			t.Errorf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range stage must render as unknown")
	}
}
