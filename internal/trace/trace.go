// Package trace is the reproduction's distributed-tracing layer: it answers
// "where did message X spend its time" once a message crosses a wire.Conn
// into the event domain and out to N subscribers, which the per-process
// metrics of internal/obs cannot.
//
// The design follows the same out-of-band discipline as the paper's format
// meta-data: the trace context (a 16-byte trace ID, an 8-byte span ID and a
// sampled bit — 25 bytes total) rides the wire in its own control frame
// immediately preceding the data frame it describes, emitted only for
// sampled messages, and tolerated-and-skipped by receivers that have
// tracing off. Within a process, instrumented stages (encode, frame write,
// frame read, fan-out, morph decision, lane choice, transform steps,
// handler delivery) record fixed-size SpanRecords into a lock-free bounded
// ring.
//
// Cost discipline mirrors internal/obs:
//
//   - A nil *Tracer is a valid no-op: every method returns a zero Span whose
//     End is free, so components built without tracing pay one predictable
//     nil check per hook and allocate nothing.
//   - Unsampled traffic is no different: StartSpan on an unsampled Context
//     returns the zero Span. Only head-sampled traces (decided once per
//     trace at StartTrace, honored downstream via the sampled bit) pay for
//     clock reads and ring writes.
//   - Span is a value type; recording allocates exactly one SpanRecord per
//     completed sampled span.
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TraceID identifies one end-to-end message journey (publisher → server →
// every sink). It is generated at the trace root and never changes as the
// context crosses processes.
type TraceID [16]byte

// SpanID identifies one stage of a trace within one process.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// Context is the trace state that crosses process boundaries: which trace a
// message belongs to, which span is its parent on the sending side, and
// whether the trace is sampled. The zero Context is "not traced" and makes
// every downstream tracing hook a no-op.
type Context struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context carries a real trace ID.
func (c Context) Valid() bool { return !c.Trace.IsZero() }

// ContextWireSize is the encoded size of a Context in a frameTrace control
// frame body: 16 trace ID bytes + 8 span ID bytes + 1 flags byte.
const ContextWireSize = 25

// ErrBadContext is returned by ParseWire for malformed context bodies.
var ErrBadContext = errors.New("trace: malformed trace context")

// AppendWire appends the 25-byte wire encoding of c to dst.
func (c Context) AppendWire(dst []byte) []byte {
	dst = append(dst, c.Trace[:]...)
	dst = append(dst, c.Span[:]...)
	var flags byte
	if c.Sampled {
		flags |= 1
	}
	return append(dst, flags)
}

// ParseWire decodes a Context from a frameTrace body. The body must be
// exactly ContextWireSize bytes and carry a nonzero trace ID; undefined
// flag bits are ignored (reserved for evolution).
func ParseWire(b []byte) (Context, error) {
	if len(b) != ContextWireSize {
		return Context{}, ErrBadContext
	}
	var c Context
	copy(c.Trace[:], b[:16])
	copy(c.Span[:], b[16:24])
	c.Sampled = b[24]&1 != 0
	if !c.Valid() {
		return Context{}, ErrBadContext
	}
	return c, nil
}

// Stage names the instrumented steps of a message's journey. The set covers
// one full publish: client-side encode and frame write, the server's frame
// read and fan-out, and each sink's frame read, morph decision, lane
// execution and handler delivery.
type Stage uint8

// Span stages, in rough journey order.
const (
	StageUnknown     Stage = iota
	StagePublish           // root: one client Publish call
	StageEncode            // record → bytes on the sending side
	StageFrameWrite        // frame write + flush into the transport
	StageFrameRead         // receiving the data frame announced by a trace frame
	StageFanout            // one event-domain fan-out pass over all sinks
	StageMorphDecide       // Morpher decision (cache hit or Algorithm 2 build)
	StageLaneSplice        // byte-level lane: splice program or identity pass-through
	StageLaneRecord        // record lane: decode + transform/convert
	StageXformStep         // one transformation-chain step (N = step index)
	StageConvert           // name-wise fill/drop conversion
	StageDeliver           // handler invocation

	// StageRegistryFetch times one format-registry RPC (internal/registry):
	// a cold fingerprint resolution or format publication round-trip. New
	// stages are appended here — the numbering is observable in span dumps
	// and must stay stable.
	StageRegistryFetch // registry client Get/Put round-trip

	// StageRegistryWatch covers the registry watch stream: one span per
	// subscription handshake (hello + watch, N = the daemon's seqno) and one
	// per applied invalidation event (FP = the entry, N = its seqno).
	StageRegistryWatch // registry watch subscribe / applied event

	// StageFanoutShard covers one membership shard's enqueue pass inside a
	// fan-out: N = the number of sinks the frame was offered to.
	StageFanoutShard // per-shard enqueue pass in the delivery engine
)

var stageNames = [...]string{
	StageUnknown:     "unknown",
	StagePublish:     "publish",
	StageEncode:      "encode",
	StageFrameWrite:  "frame_write",
	StageFrameRead:   "frame_read",
	StageFanout:      "fanout",
	StageMorphDecide: "morph_decide",
	StageLaneSplice:  "lane_splice",
	StageLaneRecord:  "lane_record",
	StageXformStep:   "xform_step",
	StageConvert:     "convert",
	StageDeliver:     "deliver",

	StageRegistryFetch: "registry_fetch",
	StageRegistryWatch: "registry_watch",
	StageFanoutShard:   "fanout_shard",
}

// String returns the stage's snake_case name ("unknown" for out-of-range
// values).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// SpanRecord is one completed span as retained by the ring. All fields are
// fixed-size so recording never allocates beyond the record itself.
type SpanRecord struct {
	Seq     uint64 // 1-based ring sequence, monotonic per tracer
	Trace   TraceID
	Span    SpanID
	Parent  SpanID // zero for roots and for spans parented in another process
	Stage   Stage
	Err     bool
	StartNS int64 // unix nanoseconds
	DurNS   int64
	FP      uint64 // format fingerprint attribute (0 = unset)
	N       int64  // stage-specific magnitude: bytes, step index, sink count
}

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the span ring (default DefaultCapacity, minimum 1).
	Capacity int

	// SampleEvery is the head-sampling rate: StartTrace keeps one in
	// SampleEvery new traces (default 1 = every trace). The decision is made
	// once at the root; downstream processes honor the context's sampled
	// bit regardless of their own rate.
	SampleEvery uint64

	// SlowNS is the tail-retention threshold: completed spans at least this
	// slow, or marked failed, are additionally kept in a secondary tail ring
	// (capacity Capacity/4, minimum 1) that routine fast traffic cannot
	// evict. That biases the bounded retention toward exactly the spans an
	// operator chasing a p99 spike or an error burst needs — under load the
	// main ring churns in milliseconds, but the slow outlier that produced a
	// /metrics exemplar survives long enough to be fetched from
	// /debug/tracez. 0 means DefaultSlowNS; negative retains only failed
	// spans.
	SlowNS int64

	// Obs optionally attaches the tracer's self-metrics to an obs registry:
	// the "trace.spans_dropped" counter tracks main-ring overwrites, so a
	// ring sized below its traffic shows up on /metrics instead of silently
	// forgetting spans. A nil registry is a valid no-op.
	Obs *obs.Registry
}

// DefaultCapacity is the span ring capacity used when Config.Capacity is 0.
const DefaultCapacity = 4096

// DefaultSlowNS is the tail-retention threshold used when Config.SlowNS is
// 0: spans of 1ms or slower are presumptively interesting on a fan-out path
// whose healthy latencies are tens of microseconds.
const DefaultSlowNS = int64(time.Millisecond)

// SpansDroppedMetric is the obs counter name tracking main-ring overwrites.
const SpansDroppedMetric = "trace.spans_dropped"

// Tracer owns a span ring and the sampling/ID state. All methods are safe
// for concurrent use; all are no-ops on a nil receiver, so components take
// a *Tracer option and never check it.
type Tracer struct {
	ring        *spanRing
	tail        *spanRing // slow/error spans, immune to fast-traffic churn
	slowNS      int64
	sampleEvery uint64
	seed        uint64
	roots       atomic.Uint64 // StartTrace calls, sampled or not (head counter)
	ids         atomic.Uint64 // ID sequence fed through splitmix64
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	if cfg.Capacity < 1 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.SlowNS == 0 {
		cfg.SlowNS = DefaultSlowNS
	}
	tailCap := cfg.Capacity / 4
	if tailCap < 1 {
		tailCap = 1
	}
	t := &Tracer{
		ring:        newSpanRing(cfg.Capacity),
		tail:        newSpanRing(tailCap),
		slowNS:      cfg.SlowNS,
		sampleEvery: cfg.SampleEvery,
		seed:        uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15 | 1,
	}
	t.ring.onDrop = cfg.Obs.Counter(SpansDroppedMetric)
	return t
}

// Enabled reports whether the tracer records anything at all; it is the
// one-branch guard hot paths use before building spans.
func (t *Tracer) Enabled() bool { return t != nil }

// nextID draws a unique nonzero 64-bit ID: splitmix64 over an atomic
// sequence, seeded per tracer. Lock-free, allocation-free, and unique
// within a tracer by construction (distinct inputs → distinct outputs,
// splitmix64 is a bijection).
func (t *Tracer) nextID() uint64 {
	x := t.seed + t.ids.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Span is one in-flight stage measurement. The zero Span (from a nil
// tracer, an unsampled trace, or a head-sampling miss) is inert: all
// methods are no-ops and Context returns the zero Context. Set FP/N/Err
// before End; they are recorded with the span.
type Span struct {
	t      *Tracer
	ctx    Context
	parent SpanID
	stage  Stage
	start  int64

	// FP is an optional format-fingerprint attribute.
	FP uint64
	// N is an optional stage-specific magnitude (bytes, step index, sinks).
	N int64
	// Err marks the measured operation as failed.
	Err bool
}

// StartTrace begins a new trace rooted at stage, applying head sampling:
// a sampling miss (or nil tracer) returns the zero Span, whose zero
// Context keeps every downstream hook inert.
func (t *Tracer) StartTrace(stage Stage) Span {
	if t == nil {
		return Span{}
	}
	if n := t.roots.Add(1); (n-1)%t.sampleEvery != 0 {
		return Span{}
	}
	var ctx Context
	binary.LittleEndian.PutUint64(ctx.Trace[:8], t.nextID())
	binary.LittleEndian.PutUint64(ctx.Trace[8:], t.nextID())
	binary.LittleEndian.PutUint64(ctx.Span[:], t.nextID())
	ctx.Sampled = true
	return Span{t: t, ctx: ctx, stage: stage, start: time.Now().UnixNano()}
}

// StartSpan begins a child span of parent (typically a context received
// from the wire or another Span's Context). Unsampled or invalid parents
// yield the zero Span.
func (t *Tracer) StartSpan(parent Context, stage Stage) Span {
	if t == nil || !parent.Sampled || !parent.Valid() {
		return Span{}
	}
	ctx := Context{Trace: parent.Trace, Sampled: true}
	binary.LittleEndian.PutUint64(ctx.Span[:], t.nextID())
	return Span{t: t, ctx: ctx, parent: parent.Span, stage: stage, start: time.Now().UnixNano()}
}

// Recording reports whether End will record anything — use it to skip
// attribute computation for inert spans.
func (s *Span) Recording() bool { return s.t != nil }

// Context returns the span's own context, the parent for child spans and
// the value to propagate across the wire so remote spans nest beneath this
// one. Zero for inert spans.
func (s Span) Context() Context { return s.ctx }

// End records the span into the tracer's ring. Slow (≥ Config.SlowNS) and
// failed spans are additionally retained in the tail ring, where fast
// traffic cannot evict them. Safe to call on inert spans; a second End is a
// no-op.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	rec := SpanRecord{
		Trace:   s.ctx.Trace,
		Span:    s.ctx.Span,
		Parent:  s.parent,
		Stage:   s.stage,
		Err:     s.Err,
		StartNS: s.start,
		DurNS:   time.Now().UnixNano() - s.start,
		FP:      s.FP,
		N:       s.N,
	}
	p := s.t.ring.record(rec)
	if rec.Err || (s.t.slowNS >= 0 && rec.DurNS >= s.t.slowNS) {
		s.t.tail.keep(p)
	}
	s.t = nil
}

// EndErr marks the span failed if err is non-nil, then Ends it.
func (s *Span) EndErr(err error) {
	if err != nil {
		s.Err = true
	}
	s.End()
}

// Total returns how many spans were ever recorded (≥ len(Snapshot())).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.total()
}

// Dropped returns how many retained spans the main ring overwrote before a
// snapshot saw them. A steadily climbing value means the ring is sized
// below its traffic (raise Config.Capacity or Config.SampleEvery); the
// tail ring may still hold the slow/error subset of the overwritten spans.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.droppedCount()
}

// Snapshot returns the retained spans — the main ring merged with the
// slow/error tail ring, deduplicated by sequence number — oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	main := t.ring.snapshot()
	tail := t.tail.snapshot()
	if len(tail) == 0 {
		return main
	}
	seen := make(map[uint64]bool, len(main))
	for _, r := range main {
		seen[r.Seq] = true
	}
	for _, r := range tail {
		if !seen[r.Seq] {
			main = append(main, r)
		}
	}
	sort.Slice(main, func(i, j int) bool { return main[i].Seq < main[j].Seq })
	return main
}
