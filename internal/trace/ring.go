package trace

import (
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// spanRing is a lock-free bounded ring of completed spans: the most recent
// cap entries are retained, older ones are overwritten. Unlike the obs
// decision ring (mutex-guarded, cold-path only), spans are recorded from
// delivery hot paths, so writers must never block each other: a writer
// claims a slot with one atomic add and publishes the record with one
// atomic pointer store. Readers (Snapshot) only load pointers, so a
// concurrent snapshot sees each slot either before or after a publish,
// never a torn record.
//
// Overwrites are not silent: each one increments dropped (and the optional
// onDrop obs counter), so a ring too small for its traffic is visible in
// /debug/tracez and /metrics instead of just quietly forgetting spans.
type spanRing struct {
	slots   []atomic.Pointer[SpanRecord]
	next    atomic.Uint64 // spans ever recorded; slot index = (seq-1) % len
	dropped atomic.Uint64 // retained spans overwritten before a snapshot
	onDrop  *obs.Counter  // optional registry mirror of dropped (nil-safe)
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{slots: make([]atomic.Pointer[SpanRecord], capacity)}
}

// record stamps rec with the next sequence number, publishes it, and
// returns the published record (for secondary retention by the tail ring).
func (r *spanRing) record(rec SpanRecord) *SpanRecord {
	seq := r.next.Add(1)
	rec.Seq = seq
	p := new(SpanRecord)
	*p = rec
	if old := r.slots[(seq-1)%uint64(len(r.slots))].Swap(p); old != nil {
		r.dropped.Add(1)
		r.onDrop.Inc()
	}
	return p
}

// keep stores an already-stamped record (published by another ring) without
// assigning a new sequence number — the tail ring's retention path. Tail
// overwrites are not counted as drops: the span already had its main-ring
// residency, and the counter answers "how many spans vanished unseen".
func (r *spanRing) keep(p *SpanRecord) {
	seq := r.next.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(p)
}

func (r *spanRing) total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

func (r *spanRing) droppedCount() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// snapshot returns the retained spans ordered oldest-first by sequence.
// Under concurrent recording the result is a consistent sample, not an
// atomic cut: a slot may still hold the record a concurrent writer is
// about to replace.
func (r *spanRing) snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
