package trace

import (
	"sort"
	"sync/atomic"
)

// spanRing is a lock-free bounded ring of completed spans: the most recent
// cap entries are retained, older ones are overwritten. Unlike the obs
// decision ring (mutex-guarded, cold-path only), spans are recorded from
// delivery hot paths, so writers must never block each other: a writer
// claims a slot with one atomic add and publishes the record with one
// atomic pointer store. Readers (Snapshot) only load pointers, so a
// concurrent snapshot sees each slot either before or after a publish,
// never a torn record.
type spanRing struct {
	slots []atomic.Pointer[SpanRecord]
	next  atomic.Uint64 // spans ever recorded; slot index = (seq-1) % len
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{slots: make([]atomic.Pointer[SpanRecord], capacity)}
}

func (r *spanRing) record(rec SpanRecord) {
	seq := r.next.Add(1)
	rec.Seq = seq
	p := new(SpanRecord)
	*p = rec
	r.slots[(seq-1)%uint64(len(r.slots))].Store(p)
}

func (r *spanRing) total() uint64 { return r.next.Load() }

// snapshot returns the retained spans ordered oldest-first by sequence.
// Under concurrent recording the result is a consistent sample, not an
// atomic cut: a slot may still hold the record a concurrent writer is
// about to replace.
func (r *spanRing) snapshot() []SpanRecord {
	out := make([]SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
