package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSpansDroppedCounting: overflowing the ring counts every overwrite in
// Dropped(), mirrors it to the obs registry, and surfaces it in the tracez
// snapshot — ring overflow must never be silent.
func TestSpansDroppedCounting(t *testing.T) {
	reg := obs.NewRegistry("test")
	// SlowNS: -1 → tail retains only failed spans; these fast successes churn.
	tr := New(Config{Capacity: 4, SlowNS: -1, Obs: reg})
	for i := 0; i < 10; i++ {
		sp := tr.StartTrace(StagePublish)
		sp.End()
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6 (10 spans into a 4-slot ring)", got)
	}
	if got := reg.Counter(SpansDroppedMetric).Load(); got != 6 {
		t.Errorf("obs %s = %d, want 6", SpansDroppedMetric, got)
	}
	snap := tr.Tracez()
	if snap.SpansDropped != 6 {
		t.Errorf("Tracez().SpansDropped = %d, want 6", snap.SpansDropped)
	}
	if !strings.Contains(snap.Text(), "6 dropped") {
		t.Errorf("text rendering missing drop count:\n%s", snap.Text())
	}

	// Without an obs registry the counter hook is a silent no-op.
	tr2 := New(Config{Capacity: 1, SlowNS: -1})
	for i := 0; i < 3; i++ {
		sp := tr2.StartTrace(StagePublish)
		sp.End()
	}
	if got := tr2.Dropped(); got != 2 {
		t.Errorf("registry-less Dropped() = %d, want 2", got)
	}
}

// TestTailRetentionBias: slow and failed spans survive main-ring churn that
// evicts everything else, and the merged snapshot carries no duplicates.
func TestTailRetentionBias(t *testing.T) {
	// 1ms threshold: the 2ms sleeper is slow, the no-op churn spans are not.
	tr := New(Config{Capacity: 8, SlowNS: int64(time.Millisecond)})

	// One failed fast span and one slow span, then enough fast successes to
	// churn the main ring several times over.
	fail := tr.StartTrace(StageDeliver)
	fail.Err = true
	fail.End()
	slow := tr.StartTrace(StageFanout)
	time.Sleep(2 * time.Millisecond)
	slow.End()

	for i := 0; i < 100; i++ {
		sp := tr.StartTrace(StagePublish)
		sp.End()
	}

	spans := tr.Snapshot()
	seen := make(map[uint64]int)
	var gotErr, gotSlow bool
	for _, r := range spans {
		seen[r.Seq]++
		if r.Err && r.Stage == StageDeliver {
			gotErr = true
		}
		if r.Stage == StageFanout && r.DurNS >= int64(2*time.Millisecond) {
			gotSlow = true
		}
	}
	for seq, n := range seen {
		if n > 1 {
			t.Errorf("seq %d appears %d times in merged snapshot", seq, n)
		}
	}
	if !gotErr {
		t.Error("failed span evicted despite tail retention")
	}
	if !gotSlow {
		t.Error("slow span evicted despite tail retention")
	}
}

// TestTracezSeeAlso: the handler advertises sibling endpoints in both
// renderings, and omits the field entirely when none are mounted.
func TestTracezSeeAlso(t *testing.T) {
	tr := New(Config{Capacity: 8})
	sp := tr.StartTrace(StagePublish)
	sp.End()

	rec := httptest.NewRecorder()
	Handler(tr, "/debug/", "/metrics").ServeHTTP(rec, httptest.NewRequest("GET", TracezPath, nil))
	var top map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	var seeAlso []string
	if err := json.Unmarshal(top["see_also"], &seeAlso); err != nil {
		t.Fatal(err)
	}
	if len(seeAlso) != 2 || seeAlso[0] != "/debug/" {
		t.Errorf("see_also = %v", seeAlso)
	}
	if _, ok := top["spans_dropped"]; !ok {
		t.Error("tracez JSON missing spans_dropped")
	}

	rec = httptest.NewRecorder()
	Handler(tr, "/metrics").ServeHTTP(rec,
		httptest.NewRequest("GET", TracezPath+"?format=text", nil))
	if !strings.Contains(rec.Body.String(), "# see also /metrics") {
		t.Errorf("text rendering missing see-also:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", TracezPath, nil))
	top = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["see_also"]; ok {
		t.Error("see_also present with no sibling mounts")
	}
}
