package spool

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pbio"
	"repro/internal/wire"
)

// buildSpool writes three records and returns the file bytes plus the offset
// where the final frame begins (the third record's data frame — the format
// frame precedes the first record only).
func buildSpool(t *testing.T, path string) (full []byte, lastFrameOff int) {
	t.Helper()
	f, err := pbio.NewFormat("torn", []pbio.Field{
		{Name: "n", Kind: pbio.Integer, Size: 4},
		{Name: "s", Kind: pbio.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []string{"alpha", "beta", "gamma-long-tail"} {
		rec := pbio.NewRecord(f).MustSet("n", pbio.Int(int64(i))).MustSet("s", pbio.Str(s))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Appends flush, so the file size here is where frame 3 starts.
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			lastFrameOff = int(st.Size())
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lastFrameOff <= 0 || lastFrameOff >= len(full) {
		t.Fatalf("bad last-frame offset %d (file %d bytes)", lastFrameOff, len(full))
	}
	return full, lastFrameOff
}

func writeFile(t *testing.T, dir string, b []byte) string {
	t.Helper()
	path := filepath.Join(dir, "cut.spool")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReaderTruncatedTail kills the writer at every byte offset of the last
// frame (the torn-write shapes a process kill can leave behind) and checks
// each prefix replays cleanly: the two intact records come back, then Next
// reports the sentinel instead of a generic decode failure.
func TestReaderTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full, off := buildSpool(t, filepath.Join(dir, "full.spool"))

	for cut := off; cut <= len(full); cut++ {
		path := writeFile(t, dir, full[:cut])
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatalf("cut=%d: record %d: %v", cut, i, err)
			}
		}
		_, err = r.Next()
		switch {
		case cut == off:
			// The file ends exactly at a frame boundary: a clean end of
			// stream, not a torn write.
			if err != io.EOF {
				t.Fatalf("cut=%d: err = %v, want io.EOF", cut, err)
			}
			if r.Truncated() {
				t.Fatalf("cut=%d: Truncated() = true at a frame boundary", cut)
			}
		case cut == len(full):
			if err != nil {
				t.Fatalf("cut=%d: full file: %v", cut, err)
			}
		default:
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
			}
			if !r.Truncated() {
				t.Fatalf("cut=%d: Truncated() = false after sentinel", cut)
			}
		}
		_ = r.Close()
	}
}

// TestReplayTornTail: Replay treats the torn tail as clean end-of-stream —
// both intact records delivered, nil error — while Truncated stays queryable.
func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	full, off := buildSpool(t, filepath.Join(dir, "full.spool"))
	path := writeFile(t, dir, full[:off+3]) // three bytes into the last frame

	var got []string
	m := core.NewMorpher(core.DefaultThresholds)
	f, err := pbio.NewFormat("torn", []pbio.Field{
		{Name: "n", Kind: pbio.Integer, Size: 4},
		{Name: "s", Kind: pbio.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterFormat(f, func(rec *pbio.Record) error {
		v, _ := rec.Get("s")
		got = append(got, v.Strval())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, wire.WithMorpher(m))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Replay(); err != nil {
		t.Fatalf("Replay() = %v, want nil for torn tail", err)
	}
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("replayed %v, want the two intact records", got)
	}
	if !r.Truncated() {
		t.Error("Truncated() = false after torn-tail replay")
	}
}

// TestTornVsCorrupt: mid-file corruption must NOT be mistaken for a torn
// tail — the sentinel is reserved for EOF-shaped failures.
func TestTornVsCorrupt(t *testing.T) {
	dir := t.TempDir()
	full, off := buildSpool(t, filepath.Join(dir, "full.spool"))

	corrupt := append([]byte(nil), full...)
	corrupt[off] = 0 // zero frame kind: stream desync, not a torn tail
	path := writeFile(t, dir, corrupt)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	_, err = r.Next()
	if err == nil || errors.Is(err, ErrTruncated) || err == io.EOF {
		t.Fatalf("corrupt frame: err = %v, want a generic decode failure", err)
	}
	if r.Truncated() {
		t.Error("Truncated() = true for corruption")
	}
}
