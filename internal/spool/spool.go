// Package spool persists message streams to files, extending morphing
// across *time*: the paper notes that, having no negotiation phase, message
// morphing "can address components separated in space and/or time" (§1).
// A process spools messages today; a reader built years later — against
// newer or older formats — replays the file through its own Morpher and the
// recorded transformation meta-data bridges the generations, exactly as it
// would have on a live connection.
//
// A spool file is simply the wire framing written to disk: format control
// frames (with any associated E-Code transforms) followed by data frames.
// No separate schema store is needed; the file is self-describing.
package spool

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/pbio"
	"repro/internal/wire"
)

// ErrTruncated is returned by Next when the file ends in the middle of a
// frame: the signature of a torn write — the spooling process was killed
// mid-Append — rather than corruption. Every record before the torn tail is
// intact and has already been returned, so callers can treat it as end of
// stream (Replay does); it stays distinguishable from both a clean io.EOF
// and a generic decode failure for callers that must report data loss.
var ErrTruncated = errors.New("spool: truncated final frame")

// Writer appends records to a spool file.
type Writer struct {
	f    *os.File
	conn *wire.Conn
}

// Create creates (or truncates) a spool file.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	return &Writer{f: f, conn: wire.NewStreamConn(f)}, nil
}

// Declare attaches transformation meta-data to a format before its first
// record is spooled, as on a live connection.
func (w *Writer) Declare(f *pbio.Format, xforms ...*core.Xform) {
	w.conn.Declare(f, xforms...)
}

// Append writes one record; the format's meta-data precedes its first
// record automatically. Append is safe for concurrent use: the underlying
// wire connection serializes frame writes, so records from concurrent
// producers interleave at record granularity (never mid-frame), though
// their relative order is unspecified.
func (w *Writer) Append(rec *pbio.Record) error {
	return w.conn.WriteRecord(rec)
}

// Close flushes and closes the file.
func (w *Writer) Close() error {
	return w.conn.Close()
}

// Reader replays a spool file.
type Reader struct {
	f         *os.File
	conn      *wire.Conn
	truncated bool
}

// Open opens a spool file for replay. Options (such as wire.WithMorpher)
// apply to the replay connection.
func Open(path string, opts ...wire.Option) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	return &Reader{f: f, conn: wire.NewStreamConn(f, opts...)}, nil
}

// Next returns the next spooled record in its recorded wire format, io.EOF
// at a clean end of the file, or ErrTruncated when the file ends inside the
// final frame (a torn write).
func (r *Reader) Next() (*pbio.Record, error) {
	rec, err := r.conn.ReadRecord()
	if err != nil && isTornTail(err) {
		r.truncated = true
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return rec, err
}

// isTornTail reports whether a replay error means the file ended mid-frame.
// On a file, a short read can only happen at the end of the file, so any
// EOF-flavored frame error — EOF after the frame-type byte, mid-length-varint,
// or mid-body — identifies a torn final frame. Frame errors that are not
// EOF-rooted (bad varints with trailing data, size-limit violations,
// malformed bodies) stay what they are: corruption.
func isTornTail(err error) bool {
	if !errors.Is(err, wire.ErrBadFrame) {
		return false
	}
	return errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// Truncated reports whether Next (or Replay) hit a torn final frame.
func (r *Reader) Truncated() bool { return r.truncated }

// Replay delivers every remaining record through the morpher attached at
// Open (wire.WithMorpher), stopping at end of file. A torn final frame is
// treated as a clean end of stream — every complete record was delivered —
// and is reported via Truncated.
func (r *Reader) Replay() error {
	for {
		rec, err := r.Next()
		if err == io.EOF || errors.Is(err, ErrTruncated) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := r.deliver(rec); err != nil {
			return err
		}
	}
}

func (r *Reader) deliver(rec *pbio.Record) error {
	m := r.Morpher()
	if m == nil {
		return fmt.Errorf("spool: Replay requires wire.WithMorpher at Open")
	}
	return m.Deliver(rec)
}

// Morpher returns the morphing engine attached at Open, if any.
func (r *Reader) Morpher() *core.Morpher { return r.conn.Morpher() }

// Close closes the file.
func (r *Reader) Close() error { return r.conn.Close() }
