package spool

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pbio"
)

// TestConcurrentProducersConsumers hammers one Writer from many goroutines,
// then replays the file from many concurrent Readers. Run under -race this
// checks both the locking claim on Append and that no record is lost,
// duplicated, or torn mid-frame.
func TestConcurrentProducersConsumers(t *testing.T) {
	f := fmtOrDie(t, "Event", []pbio.Field{
		{Name: "producer", Kind: pbio.Integer},
		{Name: "seq", Kind: pbio.Integer},
	})
	path := filepath.Join(t.TempDir(), "concurrent.spool")

	const (
		producers = 8
		perProd   = 50
		consumers = 4
	)

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				rec := pbio.NewRecord(f).
					MustSet("producer", pbio.Int(int64(p))).
					MustSet("seq", pbio.Int(int64(i)))
				if err := w.Append(rec); err != nil {
					errs <- fmt.Errorf("producer %d record %d: %w", p, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Every consumer independently replays the whole file and must see the
	// exact multiset: each (producer, seq) pair exactly once.
	var cwg sync.WaitGroup
	cerrs := make(chan error, consumers)
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			r, err := Open(path)
			if err != nil {
				cerrs <- err
				return
			}
			defer r.Close()
			seen := make(map[[2]int64]int, producers*perProd)
			for {
				rec, err := r.Next()
				if err != nil {
					break // io.EOF; any other error shows as a count mismatch
				}
				pv, _ := rec.Get("producer")
				sv, _ := rec.Get("seq")
				seen[[2]int64{pv.Int64(), sv.Int64()}]++
			}
			if len(seen) != producers*perProd {
				cerrs <- fmt.Errorf("consumer %d: %d distinct records, want %d",
					c, len(seen), producers*perProd)
				return
			}
			for key, n := range seen {
				if n != 1 {
					cerrs <- fmt.Errorf("consumer %d: record %v seen %d times", c, key, n)
					return
				}
			}
		}(c)
	}
	cwg.Wait()
	close(cerrs)
	for err := range cerrs {
		t.Fatal(err)
	}
}
