package spool

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pbio"
	"repro/internal/wire"
)

func fmtOrDie(t *testing.T, name string, fields []pbio.Field) *pbio.Format {
	t.Helper()
	f, err := pbio.NewFormat(name, fields)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSpoolRoundtrip(t *testing.T) {
	f := fmtOrDie(t, "Event", []pbio.Field{
		{Name: "seq", Kind: pbio.Integer},
		{Name: "payload", Kind: pbio.String},
	})
	path := filepath.Join(t.TempDir(), "events.spool")

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		rec := pbio.NewRecord(f).
			MustSet("seq", pbio.Int(int64(i))).
			MustSet("payload", pbio.Str("data"))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if v, _ := rec.Get("seq"); v.Int64() != int64(i) {
			t.Errorf("record %d: seq = %d", i, v.Int64())
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("after last record: err = %v, want io.EOF", err)
	}
}

// TestTimeShiftedEvolution is the "separated in time" scenario: a newer
// writer spools v2 messages with their transform; an old reader, which only
// understands v1, replays the file later and receives v1 records.
func TestTimeShiftedEvolution(t *testing.T) {
	v1 := fmtOrDie(t, "Sample", []pbio.Field{
		{Name: "id", Kind: pbio.Integer},
		{Name: "celsius", Kind: pbio.Float},
	})
	v2 := fmtOrDie(t, "Sample", []pbio.Field{
		{Name: "id", Kind: pbio.Integer},
		{Name: "kelvin", Kind: pbio.Float},
		{Name: "sensor", Kind: pbio.String},
	})
	path := filepath.Join(t.TempDir(), "samples.spool")

	// Writer epoch: the upgraded producer.
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Declare(v2, &core.Xform{
		From: v2, To: v1,
		Code: "old.id = new.id; old.celsius = new.kelvin - 273.15;",
	})
	for i := 0; i < 3; i++ {
		rec := pbio.NewRecord(v2).
			MustSet("id", pbio.Int(int64(i))).
			MustSet("kelvin", pbio.Float64(300.15+float64(i))).
			MustSet("sensor", pbio.Str("s-1"))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reader epoch: an un-upgraded consumer, possibly years later.
	morpher := core.NewMorpher(core.DefaultThresholds)
	var got []float64
	if err := morpher.RegisterFormat(v1, func(r *pbio.Record) error {
		v, _ := r.Get("celsius")
		got = append(got, v.Float64())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, wire.WithMorpher(morpher))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Replay(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i, c := range got {
		want := 27.0 + float64(i)
		if c < want-1e-9 || c > want+1e-9 {
			t.Errorf("record %d: celsius = %g, want %g", i, c, want)
		}
	}
	if st := morpher.Stats(); st.Transformed != 3 || st.Compiled != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplayWithoutMorpher(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{{Name: "x", Kind: pbio.Integer}})
	path := filepath.Join(t.TempDir(), "x.spool")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(pbio.NewRecord(f)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Replay(); err == nil {
		t.Error("Replay without a morpher must error")
	}
	if r.Morpher() != nil {
		t.Error("Morpher must be nil when not attached")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.spool")); err == nil {
		t.Error("opening a missing spool must fail")
	}
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "x.spool")); err == nil {
		t.Error("creating in a missing directory must fail")
	}
}

func TestTruncatedSpool(t *testing.T) {
	f := fmtOrDie(t, "m", []pbio.Field{{Name: "s", Kind: pbio.String}})
	dir := t.TempDir()
	path := filepath.Join(dir, "full.spool")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(pbio.NewRecord(f).MustSet("s", pbio.Str("hello world"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate mid-frame and replay: must produce a clean error, not hang
	// or panic.
	data, err := readAll(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.spool")
	if err := writeAll(cut, data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	r, err := Open(cut)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				t.Error("truncated spool must not report clean EOF")
			}
			break
		}
	}
}

func readAll(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeAll(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
