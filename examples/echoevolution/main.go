// ECho evolution (§4.1 of the paper): an event domain that upgraded to
// protocol v2.0 serves an un-upgraded v1.0 subscriber over real TCP.
//
// The server's ChannelOpenResponse shrank in v2.0 (one member list with
// role booleans instead of three overlapping lists). Instead of sniffing
// client versions, the server attaches the Figure 5 retro-transformation to
// its v2.0 format; the old client's middleware compiles it on arrival and
// morphs every response. "Except for specifying the transformation code,
// no other changes are required anywhere in the system."
//
//	go run ./examples/echoevolution
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/echo"
	"repro/internal/pbio"
)

func main() {
	// Start a v2.0 event domain.
	srv := echo.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("ECho v2.0 event domain on %s\n\n", addr)

	// Two up-to-date members join the "sensors" channel first.
	pub, err := echo.Open(addr, "sensors", echo.Options{Source: true, Contact: "tcp:station-a:4000"})
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()
	viz, err := echo.Open(addr, "sensors", echo.Options{Sink: true, Contact: "tcp:viz:4100"})
	if err != nil {
		log.Fatal(err)
	}
	defer viz.Close()

	// Now a legacy process, built against ECho v1.0, joins. It registers
	// only the v1.0 ChannelOpenResponse format; it has never heard of v2.0.
	old, err := echo.Open(addr, "sensors", echo.Options{
		Sink:     true,
		Contact:  "tcp:legacy:4200",
		V1Compat: true,
	})
	if err != nil {
		log.Fatalf("legacy client failed to join: %v", err)
	}
	defer old.Close()

	fmt.Println("legacy (v1.0) client joined; membership it decoded from the morphed response:")
	for _, m := range old.Members() {
		role := ""
		if m.IsSource {
			role += " source"
		}
		if m.IsSink {
			role += " sink"
		}
		fmt.Printf("  member %-22s id=%d%s\n", m.Info, m.ID, role)
	}

	st := old.Morpher().Stats()
	fmt.Printf("\nlegacy middleware stats: compiled %d transformation(s), morphed %d message(s)\n",
		st.Compiled, st.Transformed)

	// The live event stream works across the generations too. The publisher
	// emits Reading v2 (adds a unit field); the legacy sink knows Reading v1.
	readingV1 := pbio.MustFormat("Reading", []pbio.Field{
		{Name: "sensor", Kind: pbio.String},
		{Name: "value", Kind: pbio.Float},
	})
	readingV2 := pbio.MustFormat("Reading", []pbio.Field{
		{Name: "sensor", Kind: pbio.String},
		{Name: "value", Kind: pbio.Float},
		{Name: "unit", Kind: pbio.String},
	})

	gotOld := make(chan string, 1)
	if err := old.Handle(readingV1, func(r *pbio.Record) error {
		s, _ := r.Get("sensor")
		v, _ := r.Get("value")
		gotOld <- fmt.Sprintf("%s = %.1f", s.Strval(), v.Float64())
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	go func() { _ = old.Run() }()

	gotNew := make(chan string, 1)
	if err := viz.Handle(readingV2, func(r *pbio.Record) error {
		s, _ := r.Get("sensor")
		v, _ := r.Get("value")
		u, _ := r.Get("unit")
		gotNew <- fmt.Sprintf("%s = %.1f %s", s.Strval(), v.Float64(), u.Strval())
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	go func() { _ = viz.Run() }()

	// The evolved Reading needs no hand-written transform: dropping the
	// optional unit field is within the morphing thresholds, so the legacy
	// sink keeps working through pure name-wise conversion.
	ev := pbio.NewRecord(readingV2).
		MustSet("sensor", pbio.Str("temp-03")).
		MustSet("value", pbio.Float64(21.5)).
		MustSet("unit", pbio.Str("°C"))
	if err := pub.Publish(ev); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npublished one Reading v2 event:")
	fmt.Printf("  new sink sees:    %s\n", <-gotNew)
	fmt.Printf("  legacy sink sees: %s (unit dropped by morphing)\n", <-gotOld)
}
