// Cluster load monitoring: the paper's Figure 2 message (a CPU/memory/
// network load report) streaming through an event channel, with two
// generations of reporting agents and a derived-channel filter.
//
// The v1 agents send the exact Figure 2 record. The upgraded v2 agents
// report memory in megabytes and add a load average; their format carries
// transformation code so the unchanged dashboard keeps working. An alerting
// sink uses an E-Code filter so only overloaded-node reports cross the
// network to it (ECho's derived event channels).
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/echo"
	"repro/internal/pbio"
)

// The dashboard's native message type — Figure 2 of the paper, bound via
// struct tags.
type loadMsg struct {
	CPU     int32 `pbio:"load"`
	Memory  int32 `pbio:"mem"` // kilobytes, as v1 agents report
	Network int32 `pbio:"net"`
}

func main() {
	srv := echo.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("server: %v", err)
		}
	}()
	defer srv.Close()
	addr := ln.Addr().String()

	var reg pbio.Registry
	msgV1 := reg.MustRegister(loadMsg{}, "Msg")

	// The upgraded agents' format: memory in MB, extra load average.
	msgV2 := pbio.MustFormat("Msg", []pbio.Field{
		{Name: "load", Kind: pbio.Integer, Size: 4},
		{Name: "mem_mb", Kind: pbio.Float},
		{Name: "net", Kind: pbio.Integer, Size: 4},
		{Name: "loadavg", Kind: pbio.Float},
	})
	const v2ToV1 = `
old.load = new.load;
old.mem = new.mem_mb * 1024.0;
old.net = new.net;
`

	// Dashboard: the unchanged v1 consumer, typed structs end to end.
	dash, err := echo.Open(addr, "load", echo.Options{Sink: true, Contact: "dashboard"})
	if err != nil {
		log.Fatal(err)
	}
	defer dash.Close()
	dashGot := make(chan loadMsg, 16)
	if err := dash.Handle(msgV1, func(r *pbio.Record) error {
		var m loadMsg
		if err := reg.FromRecord(r, &m); err != nil {
			return err
		}
		dashGot <- m
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	go func() { _ = dash.Run() }()

	// Alerting sink: only wants overloaded nodes; the event domain filters
	// before the bytes ever reach it.
	alerts, err := echo.Open(addr, "load", echo.Options{
		Sink:    true,
		Contact: "alerts",
		Filter:  "return event.load > 90;",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer alerts.Close()
	alertGot := make(chan int64, 16)
	if err := alerts.Handle(msgV1, func(r *pbio.Record) error {
		v, _ := r.Get("load")
		alertGot <- v.Int64()
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	// The filter runs on v2 records too; but alerts only understands v1, so
	// morphing still applies after filtering.
	go func() { _ = alerts.Run() }()

	// A v1 agent reports through the struct API.
	agentV1, err := echo.Open(addr, "load", echo.Options{Source: true, Contact: "agent-v1"})
	if err != nil {
		log.Fatal(err)
	}
	defer agentV1.Close()
	report := func(cpu, memKB, net int32) {
		rec, err := reg.ToRecord(&loadMsg{CPU: cpu, Memory: memKB, Network: net})
		if err != nil {
			log.Fatal(err)
		}
		if err := agentV1.Publish(rec); err != nil {
			log.Fatal(err)
		}
	}

	// An upgraded v2 agent declares its transformation once.
	agentV2, err := echo.Open(addr, "load", echo.Options{Source: true, Contact: "agent-v2"})
	if err != nil {
		log.Fatal(err)
	}
	defer agentV2.Close()
	agentV2.Declare(msgV2, &core.Xform{From: msgV2, To: msgV1, Code: v2ToV1})
	reportV2 := func(cpu int32, memMB, loadavg float64, net int32) {
		rec := pbio.NewRecord(msgV2).
			MustSet("load", pbio.Int(int64(cpu))).
			MustSet("mem_mb", pbio.Float64(memMB)).
			MustSet("net", pbio.Int(int64(net))).
			MustSet("loadavg", pbio.Float64(loadavg))
		if err := agentV2.Publish(rec); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("publishing: v1 agent (cpu 42), v2 agent (cpu 95, 512 MB), v1 agent (cpu 97)")
	report(42, 2048, 10)
	reportV2(95, 512, 3.5, 20)
	report(97, 4096, 30)

	for i := 0; i < 3; i++ {
		m := <-dashGot
		src := "v1"
		if m.Memory == 512*1024 {
			src = "v2 (morphed: MB→KB, loadavg dropped)"
		}
		fmt.Printf("dashboard: cpu=%d%% mem=%dKB net=%d  [%s agent]\n", m.CPU, m.Memory, m.Network, src)
	}

	overloaded := map[int64]bool{}
	for i := 0; i < 2; i++ {
		select {
		case l := <-alertGot:
			overloaded[l] = true
		case <-time.After(5 * time.Second):
			log.Fatal("alert not delivered")
		}
	}
	fmt.Printf("alert sink (filter 'load > 90'): saw %v — the 42%% report never crossed its wire\n", keys(overloaded))

	select {
	case l := <-alertGot:
		log.Fatalf("alert sink received unexpected load %d", l)
	case <-time.After(200 * time.Millisecond):
	}
}

func keys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	if len(out) == 2 && out[0] > out[1] {
		out[0], out[1] = out[1], out[0]
	}
	return out
}
