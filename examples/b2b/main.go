// B2B messaging (§4.2 of the paper, Figures 6 and 7): a retailer and a
// supplier exchange orders through an integration broker, each speaking its
// own message structure.
//
// In the conventional architecture (Figure 6, Oracle AQ-style) the broker
// transforms every message itself with XSLT and becomes the bottleneck.
// With message morphing (Figure 7) the broker merely *associates an ECode
// segment with the message meta-data* and forwards bytes; the actual
// conversion runs at each receiver, compiled once and cached.
//
// This example runs all three parties over real TCP and shows both
// directions: orders flowing retailer → supplier and status updates flowing
// supplier → retailer, each morphed at its receiver.
//
//	go run ./examples/b2b
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"

	"repro/internal/core"
	"repro/internal/pbio"
	"repro/internal/wire"
)

// Vendor formats. The two sides structure the same business messages
// differently; only the message *names* are shared (morphing's matching is
// name-scoped, as in the paper's Algorithm 2).
var (
	retailerOrder = pbio.MustFormat("Order", []pbio.Field{
		{Name: "order_id", Kind: pbio.String},
		{Name: "sku", Kind: pbio.String},
		{Name: "quantity", Kind: pbio.Integer},
		{Name: "unit_price_cents", Kind: pbio.Integer},
	})
	supplierOrder = pbio.MustFormat("Order", []pbio.Field{
		{Name: "po_number", Kind: pbio.String},
		{Name: "item", Kind: pbio.String},
		{Name: "count", Kind: pbio.Integer},
		{Name: "total_dollars", Kind: pbio.Float},
	})
	supplierStatus = pbio.MustFormat("OrderStatus", []pbio.Field{
		{Name: "po_number", Kind: pbio.String},
		{Name: "state", Kind: pbio.String},
		{Name: "eta_days", Kind: pbio.Integer},
	})
	retailerStatus = pbio.MustFormat("OrderStatus", []pbio.Field{
		{Name: "order_id", Kind: pbio.String},
		{Name: "status", Kind: pbio.String},
	})
)

// The ECode segments the broker attaches (it authors these once, per vendor
// pair — versus transforming every message itself).
const (
	orderXform = `
old.po_number = new.order_id;
old.item = new.sku;
old.count = new.quantity;
old.total_dollars = (new.quantity * new.unit_price_cents) / 100.0;
`
	statusXform = `
old.order_id = new.po_number;
old.status = new.state + " (eta " + itoa(new.eta_days) + "d)";
`
)

func main() {
	// --- Supplier: understands only its own formats. ---
	supplierLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer supplierLn.Close()

	supplierDone := make(chan error, 1)
	go func() { supplierDone <- runSupplier(supplierLn) }()

	// --- Broker: listens for the retailer, relays to the supplier. ---
	brokerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer brokerLn.Close()
	go func() {
		if err := runBroker(brokerLn, supplierLn.Addr().String()); err != nil {
			log.Printf("broker: %v", err)
		}
	}()

	// --- Retailer: sends orders in its own format, receives status. ---
	if err := runRetailer(brokerLn.Addr().String()); err != nil {
		log.Fatal(err)
	}
	if err := <-supplierDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nB2B flow complete: the broker never transformed a message body.")
}

// runSupplier accepts the broker's connection, morphs incoming orders into
// its own structure, and answers each with a status update in its own
// format.
func runSupplier(ln net.Listener) error {
	nc, err := ln.Accept()
	if err != nil {
		return err
	}
	morpher := core.NewMorpher(core.DefaultThresholds)
	conn := wire.NewConn(nc, wire.WithMorpher(morpher))

	n := 0
	err = morpher.RegisterFormat(supplierOrder, func(rec *pbio.Record) error {
		po, _ := rec.Get("po_number")
		item, _ := rec.Get("item")
		count, _ := rec.Get("count")
		total, _ := rec.Get("total_dollars")
		fmt.Printf("supplier received order: po=%s item=%s count=%d total=$%.2f\n",
			po.Strval(), item.Strval(), count.Int64(), total.Float64())
		n++

		// Reply with a status update in the supplier's structure; the
		// broker will attach the retro-transform for the retailer.
		status := pbio.NewRecord(supplierStatus).
			MustSet("po_number", po).
			MustSet("state", pbio.Str("accepted")).
			MustSet("eta_days", pbio.Int(int64(2+n)))
		return conn.WriteRecord(status)
	})
	if err != nil {
		return err
	}

	for n < 2 {
		rec, err := conn.ReadRecord()
		if err != nil {
			return err
		}
		if err := morpher.Deliver(rec); err != nil {
			return err
		}
	}
	st := morpher.Stats()
	fmt.Printf("supplier middleware: compiled %d transform(s), morphed %d message(s)\n",
		st.Compiled, st.Transformed)
	return conn.Close()
}

// runBroker relays frames both ways. Its only morphing duty is attaching
// the right ECode segment to each vendor's formats — once, as out-of-band
// meta-data — exactly Figure 7.
func runBroker(ln net.Listener, supplierAddr string) error {
	retailerNC, err := ln.Accept()
	if err != nil {
		return err
	}
	supplierNC, err := net.Dial("tcp", supplierAddr)
	if err != nil {
		return err
	}

	toSupplier := wire.NewConn(supplierNC)
	toRetailer := wire.NewConn(retailerNC)
	// The broker's added value: evolution meta-data for both directions.
	toSupplier.Declare(retailerOrder, &core.Xform{From: retailerOrder, To: supplierOrder, Code: orderXform})
	toRetailer.Declare(supplierStatus, &core.Xform{From: supplierStatus, To: retailerStatus, Code: statusXform})

	relay := func(from, to *wire.Conn, label string) {
		for {
			rec, err := from.ReadRecord()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					log.Printf("broker %s: %v", label, err)
				}
				_ = to.Close()
				return
			}
			fmt.Printf("broker forwarding %-11s (%q, untouched payload)\n", label, rec.Format().Name())
			if err := to.WriteRecord(rec); err != nil {
				return
			}
		}
	}
	go relay(toRetailer, toSupplier, "to supplier")
	relay(toSupplier, toRetailer, "to retailer")
	return nil
}

// runRetailer sends two orders and waits for both status updates, morphed
// into the retailer's own structure.
func runRetailer(brokerAddr string) error {
	nc, err := net.Dial("tcp", brokerAddr)
	if err != nil {
		return err
	}
	morpher := core.NewMorpher(core.DefaultThresholds)
	conn := wire.NewConn(nc, wire.WithMorpher(morpher))

	got := 0
	err = morpher.RegisterFormat(retailerStatus, func(rec *pbio.Record) error {
		id, _ := rec.Get("order_id")
		status, _ := rec.Get("status")
		fmt.Printf("retailer received status: order=%s status=%q\n", id.Strval(), status.Strval())
		got++
		return nil
	})
	if err != nil {
		return err
	}

	orders := []struct {
		id, sku  string
		qty, cts int64
	}{
		{"R-1001", "WIDGET-9", 12, 199},
		{"R-1002", "GADGET-3", 5, 1450},
	}
	for _, o := range orders {
		rec := pbio.NewRecord(retailerOrder).
			MustSet("order_id", pbio.Str(o.id)).
			MustSet("sku", pbio.Str(o.sku)).
			MustSet("quantity", pbio.Int(o.qty)).
			MustSet("unit_price_cents", pbio.Int(o.cts))
		fmt.Printf("retailer sending order:  id=%s sku=%s qty=%d unit=%d¢\n", o.id, o.sku, o.qty, o.cts)
		if err := conn.WriteRecord(rec); err != nil {
			return err
		}
	}

	for got < len(orders) {
		rec, err := conn.ReadRecord()
		if err != nil {
			return err
		}
		if err := morpher.Deliver(rec); err != nil {
			return err
		}
	}
	return conn.Close()
}
