// Quickstart: the smallest complete message-morphing program.
//
// A receiver registers the only format it understands (Quote "v1"). A newer
// sender produces messages in an evolved format ("v2": price became a float
// in dollars, a volume field was added) and associates transformation code
// with it. The receiver's Morpher compiles that code on first contact and
// every v2 message is delivered as a v1 record — no negotiation, no
// version checks in application code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pbio"
)

func main() {
	// 1. The receiving application's native message type, bound to a PBIO
	//    format through struct tags (the Go analog of Figure 2's IOField
	//    declaration).
	type QuoteV1 struct {
		Symbol string `pbio:"symbol"`
		Cents  int64  `pbio:"cents"`
	}
	var reg pbio.Registry
	v1 := reg.MustRegister(QuoteV1{}, "Quote")

	// 2. The sender's evolved format. In a real deployment this arrives
	//    out-of-band over the wire (see internal/wire); here we declare it
	//    directly.
	v2 := pbio.MustFormat("Quote", []pbio.Field{
		{Name: "symbol", Kind: pbio.String},
		{Name: "dollars", Kind: pbio.Float},
		{Name: "volume", Kind: pbio.Integer},
	})

	// 3. The receiver-side morphing engine: register what we understand...
	morpher := core.NewMorpher(core.DefaultThresholds)
	err := morpher.RegisterFormat(v1, func(rec *pbio.Record) error {
		var q QuoteV1
		if err := reg.FromRecord(rec, &q); err != nil {
			return err
		}
		fmt.Printf("application received: %+v\n", q)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// ...and the transformation the new format carries with it.
	err = morpher.AddTransform(&core.Xform{
		From: v2,
		To:   v1,
		Code: `old.symbol = new.symbol; old.cents = new.dollars * 100.0;`,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. A v2 message arrives (here encoded and decoded to show the real
	//    path: only the 8-byte fingerprint travels with the data).
	msg := pbio.NewRecord(v2).
		MustSet("symbol", pbio.Str("ACME")).
		MustSet("dollars", pbio.Float64(12.5)).
		MustSet("volume", pbio.Int(1000))
	encoded := pbio.EncodeRecord(msg)
	fmt.Printf("wire message: %d bytes (native %d + %d envelope)\n",
		len(encoded), msg.NativeSize(), pbio.EnvelopeSize)

	if err := morpher.DeliverEncoded(encoded, v2); err != nil {
		log.Fatal(err)
	}

	// 5. The decision is cached: delivering again reuses the compiled
	//    transformation.
	if err := morpher.Deliver(msg); err != nil {
		log.Fatal(err)
	}
	st := morpher.Stats()
	fmt.Printf("morpher stats: %d delivered, %d compiled (cached after the first), %d transformed\n",
		st.Delivered, st.Compiled, st.Transformed)

	// 6. Ask the engine to explain its plan for the evolved format.
	ex, err := morpher.Explain(v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan for %q: %d transformation step(s) into %q, perfect=%v\n",
		v2.Name(), ex.ChainLen, ex.Target.Name(), ex.Perfect)
}
