#!/bin/sh
# Repo hygiene gate: vet, build, and race-enabled tests for every package.
# Referenced from README.md ("Observability" / "Testing"); CI and pre-commit
# both run exactly this.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
formatd_pid=; echodemo_pid=; peer0_pid=; peer1_pid=; peer2_pid=; replica_pid=
trap 'kill "$formatd_pid" "$echodemo_pid" "$peer0_pid" "$peer1_pid" "$peer2_pid" "$replica_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (splice/fanout fast paths)"
go test -run xxx -bench 'Splice|Fanout' -benchtime 100x ./...
echo "== morphbench pipeline (writes BENCH_pipeline.json)"
go run ./cmd/morphbench -exp pipeline -quick
echo "== morphbench trace (writes BENCH_trace.json)"
go run ./cmd/morphbench -exp trace -quick
echo "== morphbench registry (writes BENCH_registry.json)"
go run ./cmd/morphbench -exp registry -quick
echo "== morphbench watch (writes BENCH_watch.json)"
go run ./cmd/morphbench -exp watch -quick
echo "== morphbench obsload (writes BENCH_obs.json)"
go run ./cmd/morphbench -exp obsload -quick
echo "== morphbench fanout smoke (quick sweep, temp output)"
go run ./cmd/morphbench -exp fanout -quick -fanoutjson "$tmpdir/BENCH_fanout_quick.json"
jq -e '.allocs_per_delivery == 0' "$tmpdir/BENCH_fanout_quick.json" >/dev/null \
    || { echo "fanout smoke: allocs_per_delivery != 0 on the shared-frame path"; exit 1; }
jq -e '[.points[].speedup] | min >= 2' "$tmpdir/BENCH_fanout_quick.json" >/dev/null \
    || { echo "fanout smoke: quick-mode batched speedup fell below 2x"; exit 1; }
echo "== fanout floors (committed BENCH_fanout.json)"
jq -e '.allocs_per_delivery == 0' BENCH_fanout.json >/dev/null \
    || { echo "BENCH_fanout.json: allocs_per_delivery != 0"; exit 1; }
jq -e '[.points[] | select(.sinks >= 100000) | .speedup] | length > 0 and min >= 5' BENCH_fanout.json >/dev/null \
    || { echo "BENCH_fanout.json: 100k+ sink speedup below the 5x acceptance floor"; exit 1; }
echo "== morphbench tapload smoke (quick sweep, temp output)"
go run ./cmd/morphbench -exp tapload -quick -tapjson "$tmpdir/BENCH_tap_quick.json"
jq -e '.unarmed_overhead_pct <= 2' "$tmpdir/BENCH_tap_quick.json" >/dev/null \
    || { echo "tap smoke: unarmed tap overhead above the 2% splice-lane floor"; exit 1; }
jq -e '.allocs_delta == 0' "$tmpdir/BENCH_tap_quick.json" >/dev/null \
    || { echo "tap smoke: disarmed tap hook allocates on the wire roundtrip"; exit 1; }
echo "== tap floors (committed BENCH_tap.json)"
jq -e '.unarmed_overhead_pct <= 2 and .allocs_delta == 0' BENCH_tap.json >/dev/null \
    || { echo "BENCH_tap.json: unarmed tap cost above the acceptance floor"; exit 1; }
echo "== pipeline splice floor (vs HEAD baseline)"
sh scripts/bench_guard.sh "$tmpdir"
echo "== fanout churn/isolation suite (race-enabled)"
go test -race -count=1 -run 'TestFanoutChurnStress|TestSlowSinkIsolation|TestFailedWriteReleasesGauges' \
    ./internal/echo/
go test -race -count=1 -run 'TestQueueConcurrentChurn|TestQueueFailedWriteReleasesGauges|TestFrame' \
    ./internal/fanout/
echo "== tap ring & capture suite (race-enabled)"
go test -race -count=1 -run 'TestConcurrentCaptureAndSnapshot|TestDisarmedCapturesNothing|TestRingWrapCountsDrops|TestCapture' \
    ./internal/tap/
echo "== morphtap round-trip (capture -> decode -> replay, byte-exact)"
go test -race -count=1 -run 'TestMorphtap' ./cmd/morphtap/
echo "== registry watch/reconnect suite (race-enabled)"
go test -race -count=1 -run 'TestWatch|TestRegisterPurgesNegativeCache|TestConcurrentResolveRegisterWatch' \
    ./internal/registry/
echo "== formatd smoke (random ports, e2e interop, registryz JSON)"
go build -o "$tmpdir/formatd" ./cmd/formatd
"$tmpdir/formatd" -addr 127.0.0.1:0 -debug 127.0.0.1:0 \
    -snapshot "$tmpdir/table.spool" >"$tmpdir/formatd.log" 2>&1 &
formatd_pid=$!
for _ in $(seq 1 50); do
    grep -q "debug endpoints on" "$tmpdir/formatd.log" && break
    sleep 0.1
done
debug_url=$(sed -n 's/.*debug endpoints on \(http:[^ ]*\).*/\1/p' "$tmpdir/formatd.log")
[ -n "$debug_url" ] || { echo "formatd never became ready:"; cat "$tmpdir/formatd.log"; exit 1; }
go test -run 'TestRegistryOnlyInterop|TestRegistryDownFallback|TestFormatdDeathMidRun' \
    -count=1 ./internal/echo/
curl -sf "$debug_url" | jq -e '.count >= 0 and .watch_seq >= 0 and (.watchers | type == "array")' >/dev/null \
    || { echo "registryz did not serve valid JSON (count/watch_seq/watchers)"; exit 1; }
echo "== formatd telemetry plane (/metrics, /healthz, /readyz)"
debug_base=${debug_url%/debug/*}
curl -sf "$debug_base/metrics" | grep -q '^# TYPE morph_formatd_entries gauge' \
    || { echo "formatd /metrics missing morph_formatd_entries"; exit 1; }
curl -sf "$debug_base/healthz" | grep -q '"ok"' \
    || { echo "formatd /healthz not ok"; exit 1; }
curl -sf "$debug_base/readyz" | jq -e '.ready == true and ([.probes[].name] | index("listener") != null and index("spool") != null)' >/dev/null \
    || { echo "formatd /readyz not ready with listener+spool probes"; exit 1; }
curl -sf "$debug_base/debug/tapz" | jq -e '.name == "formatd" and (.conns | type == "array")' >/dev/null \
    || { echo "formatd /debug/tapz did not serve a tap snapshot"; exit 1; }
kill "$formatd_pid"
formatd_pid=
echo "== cluster replication/failover suite (race-enabled)"
go test -race -count=1 -run 'TestCluster|TestFailover|TestStandby' ./internal/cluster/
go test -race -count=1 \
    -run 'TestClusterClient|TestResubscribeArmsWithoutFirstSuccess|TestReregisterOnInstanceChange|TestWatchRingSizeOption' \
    ./internal/registry/
echo "== formatd cluster smoke (3 peers, SIGKILL the primary under live load)"
cat >"$tmpdir/freeport.go" <<'EOF'
package main

import (
	"fmt"
	"net"
)

func main() {
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		defer ln.Close()
		fmt.Println(ln.Addr().String())
	}
}
EOF
set -- $(go run "$tmpdir/freeport.go")
cluster_peers="$1,$2,$3"
i=0
for addr in "$@"; do
    "$tmpdir/formatd" -addr "$addr" -debug 127.0.0.1:0 \
        -peers "$cluster_peers" -self "$i" -shards 4 -hb 100ms -failafter 3 \
        -snapshot "$tmpdir/peer$i.spool" >"$tmpdir/peer$i.log" 2>&1 &
    eval "peer${i}_pid=\$!"
    i=$((i + 1))
done
peer_debug() {
    sed -n 's/.*debug endpoints on \(http:[^ ]*\).*/\1/p' "$tmpdir/peer$1.log"
}
for _ in $(seq 1 100); do
    p0_debug=$(peer_debug 0)
    [ -n "$p0_debug" ] && curl -sf "$p0_debug" | jq -e '.cluster.role == "primary"' >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "$(peer_debug 0)" | jq -e '.cluster.role == "primary" and (.cluster.peers | type == "array")' >/dev/null \
    || { echo "peer 0 never became primary:"; cat "$tmpdir/peer0.log"; exit 1; }
go build -o "$tmpdir/morphbench" ./cmd/morphbench
"$tmpdir/morphbench" -exp replica -cluster "$cluster_peers" -shards 4 -duration 6s \
    -replicajson "$tmpdir/BENCH_replica_live.json" >"$tmpdir/replica.log" 2>&1 &
replica_pid=$!
# The external run seeds 64 formats plus 16 lag probes before the load
# window opens; once peer 1's table shows them all replicated, the resolve
# loop is live and the SIGKILL lands mid-load.
for _ in $(seq 1 200); do
    p1_debug=$(peer_debug 1)
    [ -n "$p1_debug" ] && count=$(curl -sf "$p1_debug" | jq '.count' 2>/dev/null) \
        && [ "${count:-0}" -ge 80 ] && break
    sleep 0.1
done
sleep 1
kill -9 "$peer0_pid"
peer0_pid=
wait "$replica_pid" || { echo "replica live load failed:"; cat "$tmpdir/replica.log"; exit 1; }
replica_pid=
curl -sf "$(peer_debug 1)" | jq -e '.cluster.role == "primary"' >/dev/null \
    || { echo "peer 1 did not take over after the primary was SIGKILLed"; cat "$tmpdir/peer1.log"; exit 1; }
jq -e '.failed_resolutions == 0 and .resolutions > 0' "$tmpdir/BENCH_replica_live.json" >/dev/null \
    || { echo "cluster smoke: resolutions failed during primary SIGKILL"; cat "$tmpdir/BENCH_replica_live.json"; exit 1; }
jq -e '.blackout_ns < 5000000000 and .staleness_max_ns < 5000000000' "$tmpdir/BENCH_replica_live.json" >/dev/null \
    || { echo "cluster smoke: failover blackout/staleness above the 5s ceiling"; cat "$tmpdir/BENCH_replica_live.json"; exit 1; }
kill "$peer1_pid" "$peer2_pid"
peer1_pid=; peer2_pid=
echo "== replica floors (committed BENCH_replica.json)"
jq -e '.failed_resolutions == 0 and .blackout_ns < 5000000000 and .hit_allocs_per_op == 0' BENCH_replica.json >/dev/null \
    || { echo "BENCH_replica.json: failover acceptance floors not met"; exit 1; }
echo "== fleet chaos soak smoke (quick, race-enabled, seeded)"
go run -race ./cmd/morphbench -exp fleet -quick -seed 1 -fleetjson "$tmpdir/BENCH_fleet_quick.json"
jq -e '.lost_messages == 0 and .byte_mismatches == 0 and .check_failures == 0' "$tmpdir/BENCH_fleet_quick.json" >/dev/null \
    || { echo "fleet smoke: message loss or corruption under chaos"; cat "$tmpdir/BENCH_fleet_quick.json"; exit 1; }
jq -e '.live_frames_at_drain == 0' "$tmpdir/BENCH_fleet_quick.json" >/dev/null \
    || { echo "fleet smoke: frames still live after drain (refcount leak)"; exit 1; }
jq -e '.formatd_recovery_ns < 5000000000 and .broker_recovery_ns < 5000000000' "$tmpdir/BENCH_fleet_quick.json" >/dev/null \
    || { echo "fleet smoke: kill recovery above the 5s ceiling"; cat "$tmpdir/BENCH_fleet_quick.json"; exit 1; }
echo "== fleet floors (committed BENCH_fleet.json)"
jq -e '.lost_messages == 0 and .byte_mismatches == 0 and .check_failures == 0 and .live_frames_at_drain == 0' BENCH_fleet.json >/dev/null \
    || { echo "BENCH_fleet.json: loss/corruption acceptance floors not met"; exit 1; }
jq -e '.generations >= 100 and .formatd_kills >= 1 and .broker_kills >= 1' BENCH_fleet.json >/dev/null \
    || { echo "BENCH_fleet.json: full run must cover >=100 generations with formatd and broker kills"; exit 1; }
echo "== echo telemetry plane (live /metrics golden, healthz/readyz)"
go build -o "$tmpdir/echodemo" ./cmd/echodemo
"$tmpdir/echodemo" -role server -addr 127.0.0.1:0 -debug 127.0.0.1:0 \
    >"$tmpdir/echodemo.log" 2>&1 &
echodemo_pid=$!
for _ in $(seq 1 50); do
    grep -q "debug endpoints on" "$tmpdir/echodemo.log" && break
    sleep 0.1
done
echo_debug=$(sed -n 's/.*debug endpoints on \(http:[^ ]*\)\/debug\/.*/\1/p' "$tmpdir/echodemo.log")
[ -n "$echo_debug" ] || { echo "echodemo never served debug endpoints:"; cat "$tmpdir/echodemo.log"; exit 1; }
echo_addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$tmpdir/echodemo.log")
curl -sf "$echo_debug/debug/tapz?arm=on" >/dev/null \
    || { echo "echo /debug/tapz?arm=on failed"; exit 1; }
"$tmpdir/echodemo" -role publish -addr "$echo_addr" -n 2 >/dev/null 2>&1
metrics=$(curl -sf "$echo_debug/metrics")
for series in \
    '^# TYPE morph_echo_delivered_total counter' \
    '^# TYPE morph_echo_fanout_ns histogram' \
    '^# TYPE morph_echo_members gauge' \
    '^morph_echo_channel_delivered_total{channel="quotes"}' \
    '^# TYPE morph_wire_data_frames_recv_total counter'; do
    echo "$metrics" | grep -q "$series" \
        || { echo "echo /metrics missing golden series: $series"; exit 1; }
done
curl -sf "$echo_debug/healthz" | grep -q '"ok"' || { echo "echo /healthz not ok"; exit 1; }
curl -sf "$echo_debug/readyz" | jq -e '.ready == true and ([.probes[].name] | index("listener") != null)' >/dev/null \
    || { echo "echo /readyz not ready with listener probe"; exit 1; }
curl -sf "$echo_debug/debug/" | grep -q '/metrics' || { echo "echo /debug/ index missing /metrics"; exit 1; }
curl -sf "$echo_debug/debug/" | grep -q '/debug/tapz' || { echo "echo /debug/ index missing /debug/tapz"; exit 1; }
curl -sf "$echo_debug/metrics" | grep -q '^# TYPE morph_go_goroutines gauge' \
    || { echo "echo /metrics missing morph_go_goroutines runtime series"; exit 1; }
curl -sf "$echo_debug/readyz" | jq -e '[.probes[].name] | index("fanout") != null' >/dev/null \
    || { echo "echo /readyz missing fanout probe"; exit 1; }
echo "== morphcap live round trip (tapz download -> morphtap decode & replay)"
curl -sf "$echo_debug/debug/tapz?format=morphcap" -o "$tmpdir/echo.morphcap"
[ -s "$tmpdir/echo.morphcap" ] || { echo "tapz morphcap download was empty"; exit 1; }
go build -o "$tmpdir/morphtap" ./cmd/morphtap
"$tmpdir/morphtap" "$tmpdir/echo.morphcap" | grep -q 'data' \
    || { echo "morphtap decoded no data frames from the live capture"; exit 1; }
"$tmpdir/morphtap" -replay -out "$tmpdir/replay.bin" "$tmpdir/echo.morphcap" >/dev/null \
    || { echo "morphtap -replay failed on the live capture"; exit 1; }
[ -s "$tmpdir/replay.bin" ] || { echo "morphtap -replay delivered nothing"; exit 1; }
kill "$echodemo_pid"
echodemo_pid=
echo "== fuzz smoke (wire frame parser, 10s)"
go test -run xxx -fuzz FuzzConnReadFrames -fuzztime 10s ./internal/wire/
echo "ok"
