#!/bin/sh
# Repo hygiene gate: vet, build, and race-enabled tests for every package.
# Referenced from README.md ("Observability" / "Testing"); CI and pre-commit
# both run exactly this.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (splice/fanout fast paths)"
go test -run xxx -bench 'Splice|Fanout' -benchtime 100x ./...
echo "== morphbench pipeline (writes BENCH_pipeline.json)"
go run ./cmd/morphbench -exp pipeline -quick
echo "== morphbench trace (writes BENCH_trace.json)"
go run ./cmd/morphbench -exp trace -quick
echo "== fuzz smoke (wire frame parser, 10s)"
go test -run xxx -fuzz FuzzConnReadFrames -fuzztime 10s ./internal/wire/
echo "ok"
