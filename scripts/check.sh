#!/bin/sh
# Repo hygiene gate: vet, build, and race-enabled tests for every package.
# Referenced from README.md ("Observability" / "Testing"); CI and pre-commit
# both run exactly this.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (splice/fanout fast paths)"
go test -run xxx -bench 'Splice|Fanout' -benchtime 100x ./...
echo "== morphbench pipeline (writes BENCH_pipeline.json)"
go run ./cmd/morphbench -exp pipeline -quick
echo "== morphbench trace (writes BENCH_trace.json)"
go run ./cmd/morphbench -exp trace -quick
echo "== morphbench registry (writes BENCH_registry.json)"
go run ./cmd/morphbench -exp registry -quick
echo "== morphbench watch (writes BENCH_watch.json)"
go run ./cmd/morphbench -exp watch -quick
echo "== registry watch/reconnect suite (race-enabled)"
go test -race -count=1 -run 'TestWatch|TestRegisterPurgesNegativeCache|TestConcurrentResolveRegisterWatch' \
    ./internal/registry/
echo "== formatd smoke (random ports, e2e interop, registryz JSON)"
tmpdir=$(mktemp -d)
trap 'kill "$formatd_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/formatd" ./cmd/formatd
"$tmpdir/formatd" -addr 127.0.0.1:0 -debug 127.0.0.1:0 \
    -snapshot "$tmpdir/table.spool" >"$tmpdir/formatd.log" 2>&1 &
formatd_pid=$!
for _ in $(seq 1 50); do
    grep -q "debug endpoints on" "$tmpdir/formatd.log" && break
    sleep 0.1
done
debug_url=$(sed -n 's/.*debug endpoints on \(http:[^ ]*\).*/\1/p' "$tmpdir/formatd.log")
[ -n "$debug_url" ] || { echo "formatd never became ready:"; cat "$tmpdir/formatd.log"; exit 1; }
go test -run 'TestRegistryOnlyInterop|TestRegistryDownFallback|TestFormatdDeathMidRun' \
    -count=1 ./internal/echo/
curl -sf "$debug_url" | jq -e '.count >= 0 and .watch_seq >= 0 and (.watchers | type == "array")' >/dev/null \
    || { echo "registryz did not serve valid JSON (count/watch_seq/watchers)"; exit 1; }
kill "$formatd_pid"
echo "== fuzz smoke (wire frame parser, 10s)"
go test -run xxx -fuzz FuzzConnReadFrames -fuzztime 10s ./internal/wire/
echo "ok"
