#!/bin/sh
# Floor-regression guard for the splice lane: the freshly measured
# BENCH_pipeline.json must hold the committed (HEAD) baseline — per
# workload, splice_ns_per_op within 5% and splice_allocs_per_op not above
# it. Wall-clock noise at the ~100ns scale is absorbed by retrying: the
# floor only fails if the best of three re-measurements still misses it.
set -eu
cd "$(dirname "$0")/.."
tmpdir=${1:-$(mktemp -d)}

# The baseline is the index copy (what the next commit will record) so a
# PR that legitimately re-baselines can stage the new file first; with
# nothing staged the index mirrors HEAD, so CI compares against the last
# commit.
base="$tmpdir/BENCH_pipeline_head.json"
if ! git show :BENCH_pipeline.json >"$base" 2>/dev/null; then
    echo "no committed BENCH_pipeline.json baseline; skipping splice floor"
    exit 0
fi

check() {
    jq -e -s '
        .[0] as $head | .[1] as $cur
        | [ $cur[] as $c
            | ($head[] | select(.workload == $c.workload)) as $b
            | ($c.splice_ns_per_op <= ($b.splice_ns_per_op * 1.05 | ceil))
              and ($c.splice_allocs_per_op <= $b.splice_allocs_per_op) ]
        | length > 0 and all' "$base" "$1" >/dev/null
}

cur="BENCH_pipeline.json"
if check "$cur"; then
    exit 0
fi
for i in 1 2 3; do
    # Quick-mode windows are noisy at the ~100ns scale; the decisive
    # re-measurements use the full windows the baseline was recorded with.
    echo "splice floor missed; re-measuring with full windows (attempt $i of 3)"
    go run ./cmd/morphbench -exp pipeline \
        -pipelinejson "$tmpdir/pipe_retry.json" >/dev/null
    cur="$tmpdir/pipe_retry.json"
    if check "$cur"; then
        exit 0
    fi
done
echo "BENCH_pipeline.json: splice lane regressed >5% vs the HEAD baseline"
echo "  baseline:"
jq -c '.[] | {workload, splice_ns_per_op, splice_allocs_per_op}' "$base"
echo "  measured:"
jq -c '.[] | {workload, splice_ns_per_op, splice_allocs_per_op}' "$cur"
exit 1
