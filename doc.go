// Package repro is a Go reproduction of "Lightweight Morphing Support for
// Evolving Middleware Data Exchanges in Distributed Applications"
// (Agarwala, Eisenhauer, Schwan — ICDCS 2005).
//
// The implementation lives under internal/:
//
//	internal/core   — message morphing: Diff, MaxMatch, the Morpher engine
//	internal/pbio   — PBIO-style binary wire format with out-of-band meta-data
//	internal/ecode  — the E-Code C subset (lexer → parser → bytecode → VM)
//	internal/echo   — the ECho publish/subscribe middleware of §4.1
//	internal/wire   — framed transport carrying formats and transforms out-of-band
//	internal/xmlx   — XML encode/parse/bind baseline
//	internal/xslt   — XSLT 1.0 subset + XPath-lite baseline
//	internal/bench  — workload generator and evaluation harness (§5)
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; `go run ./cmd/morphbench` prints them in the paper's
// layout. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// measured-vs-paper results.
package repro
